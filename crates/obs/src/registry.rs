//! The metrics registry: counters, gauges, and log-scale histograms.
//!
//! Recording never takes the registry lock on the hot path. Each call
//! site (via the [`counter!`](crate::counter)/[`observe!`](crate::observe)
//! macros) caches a per-thread [`Counter`]/[`Hist`] handle — an `Arc`
//! around a plain atomic cell — registered once per `(thread, site)`.
//! Increments are relaxed atomic RMWs on a shard nothing else touches;
//! [`snapshot`] merges shards by name under the lock, so contention is
//! confined to handle creation and scrapes. Gauges are rare writes
//! (high-water marks per DP run) and live behind a single mutex.

use crate::runtime_enabled;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Total histogram buckets; the last one is the overflow bucket,
/// surfaced only through `+Inf` in the Prometheus exposition.
pub const HIST_BUCKETS: usize = 42;
/// Finite buckets: upper bounds `2^7 ns … 2^47 ns` (128 ns … ≈39 h),
/// doubling per bucket — wide enough for wall-clock stage timings *and*
/// simulated-time latencies (deferrals span hours).
pub const FINITE_BUCKETS: usize = HIST_BUCKETS - 1;
const MIN_EXP: u32 = 7;

/// Upper bound of finite bucket `i`, in seconds.
fn bucket_le_secs(i: usize) -> f64 {
    (1u64 << (MIN_EXP + i as u32)) as f64 / 1e9
}

/// First bucket whose upper bound is ≥ `ns` (overflow bucket past 2^47).
fn bucket_of(ns: u64) -> usize {
    if ns <= (1 << MIN_EXP) {
        return 0;
    }
    let ceil_log = 64 - (ns - 1).leading_zeros();
    ((ceil_log - MIN_EXP) as usize).min(HIST_BUCKETS - 1)
}

/// One histogram shard: per-bucket counts plus count/sum.
pub(crate) struct HistCell {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed); // lint:allow(atomic-ordering) shard cells are reached under the registry Mutex, whose unlock edge orders resets against merges; racing Relaxed increments are statistical
        self.sum_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // lint:allow(atomic-ordering) shard cells are reached under the registry Mutex, whose unlock edge orders resets against merges; racing Relaxed increments are statistical
        }
    }
}

/// A counter handle: a private per-thread shard of a named counter.
/// Cloning shares the shard; the registry keeps one `Arc` so values
/// survive thread exit.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (no-op when observability is disabled at run time).
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 && runtime_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A histogram handle: a private per-thread shard of a named histogram.
#[derive(Clone)]
pub struct Hist(Arc<HistCell>);

impl Hist {
    /// Records a value in seconds (wall-clock or simulated).
    #[inline]
    pub fn observe_secs(&self, secs: f64) {
        if !runtime_enabled() {
            return;
        }
        let ns = if secs <= 0.0 {
            0
        } else {
            (secs * 1e9).min(u64::MAX as f64) as u64
        };
        let cell = &self.0;
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum_ns.fetch_add(ns, Ordering::Relaxed);
        cell.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }
}

struct Registry {
    counters: Mutex<Vec<(&'static str, Arc<AtomicU64>)>>,
    hists: Mutex<Vec<(&'static str, Arc<HistCell>)>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()), // lint:allow(hot-path-alloc) one-time OnceLock construction; hot-path calls return the cached reference
        hists: Mutex::new(Vec::new()),
        gauges: Mutex::new(BTreeMap::new()),
    })
}

/// Registers a new per-thread shard of the named counter. Call once per
/// call site per thread (the macros cache the handle in a
/// `thread_local!`); shards with the same name merge on scrape.
pub fn counter_handle(name: &'static str) -> Counter {
    let cell = Arc::new(AtomicU64::new(0));
    registry()
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((name, cell.clone()));
    Counter(cell)
}

/// Registers a new per-thread shard of the named histogram.
pub fn hist_handle(name: &'static str) -> Hist {
    let cell = Arc::new(HistCell::new());
    registry()
        .hists
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((name, cell.clone()));
    Hist(cell)
}

/// Sets a gauge to `value`.
pub fn gauge_set(name: &'static str, value: f64) {
    if !runtime_enabled() {
        return;
    }
    registry()
        .gauges
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(name, value);
}

/// Raises a gauge to `value` if it is higher (high-water mark).
pub fn gauge_max(name: &'static str, value: f64) {
    if !runtime_enabled() {
        return;
    }
    let mut g = registry().gauges.lock().unwrap_or_else(|e| e.into_inner());
    let slot = g.entry(name).or_insert(value);
    if value > *slot {
        *slot = value;
    }
}

/// Zeroes every metric in place. Cached thread-local handles stay valid
/// (shards are zeroed, not dropped), so call sites keep recording into
/// the same cells after a reset.
pub fn reset() {
    let r = registry();
    for (_, c) in r.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        c.store(0, Ordering::Relaxed); // lint:allow(atomic-ordering) shard cells are reached under the registry Mutex, whose unlock edge orders resets against merges; racing Relaxed increments are statistical
    }
    for (_, h) in r.hists.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        h.zero();
    }
    r.gauges.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// A scraped counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnap {
    /// Metric name.
    pub name: String,
    /// Merged value across all shards.
    pub value: u64,
}

/// A scraped gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnap {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: f64,
}

/// One non-empty finite histogram bucket (per-bucket count, not
/// cumulative; overflow lives only in [`HistSnap::count`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnap {
    /// Upper bound of the bucket, in seconds.
    pub le_secs: f64,
    /// Observations in this bucket alone.
    pub count: u64,
}

/// A scraped histogram, merged across shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistSnap {
    /// Metric name.
    pub name: String,
    /// Total observations (including overflow past the last bucket).
    pub count: u64,
    /// Sum of observed values, in seconds.
    pub sum_secs: f64,
    /// Non-empty finite buckets, ascending by bound.
    pub buckets: Vec<BucketSnap>,
}

impl HistSnap {
    /// Mean observed value in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_secs / self.count as f64
    }

    /// Approximate quantile (`0.0..=1.0`), interpolated linearly inside
    /// the bucket where the cumulative count crosses `q · count`. The
    /// bucket's lower bound is half its upper bound (bounds double),
    /// except the first finite bucket which starts at zero — so a rank
    /// landing `f` of the way through a bucket's mass reports
    /// `lo + f · (le − lo)` rather than snapping to `le`. A rank
    /// landing past the last finite bucket (overflow observations)
    /// reports the overflow mass's estimated mean — `sum` minus the
    /// finite buckets' midpoint mass, over the overflow count — never
    /// a raw bucket bound, so a single huge outlier surfaces at its
    /// real magnitude instead of the histogram ceiling.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        let mut last = 0.0;
        let mut finite_mass = 0.0;
        for b in &self.buckets {
            let before = cum;
            cum += b.count;
            let lo = if b.le_secs <= bucket_le_secs(0) {
                0.0
            } else {
                b.le_secs / 2.0
            };
            if cum >= target {
                let frac = (target - before) as f64 / b.count as f64;
                return lo + frac * (b.le_secs - lo);
            }
            finite_mass += b.count as f64 * (lo + b.le_secs) / 2.0;
            last = b.le_secs;
        }
        let overflow = self.count.saturating_sub(cum);
        if overflow == 0 {
            return last;
        }
        ((self.sum_secs - finite_mass) / overflow as f64).max(last)
    }
}

/// A point-in-time scrape of the whole registry, each section sorted by
/// name. Serializes to JSON via serde; see [`Snapshot::to_prometheus`]
/// for the text exposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counters, merged across shards.
    pub counters: Vec<CounterSnap>,
    /// Gauges.
    pub gauges: Vec<GaugeSnap>,
    /// Histograms, merged across shards.
    pub histograms: Vec<HistSnap>,
}

impl Snapshot {
    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Value of a gauge, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A histogram by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Merges every shard into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let r = registry();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (name, c) in r.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        *counters.entry(name).or_insert(0) += c.load(Ordering::Relaxed); // lint:allow(atomic-ordering) shard cells are reached under the registry Mutex, whose unlock edge orders resets against merges; racing Relaxed increments are statistical
    }

    let mut hists: BTreeMap<&'static str, (u64, u64, [u64; HIST_BUCKETS])> = BTreeMap::new();
    for (name, h) in r.hists.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        let entry = hists.entry(name).or_insert((0, 0, [0; HIST_BUCKETS]));
        entry.0 += h.count.load(Ordering::Relaxed); // lint:allow(atomic-ordering) shard cells are reached under the registry Mutex, whose unlock edge orders resets against merges; racing Relaxed increments are statistical
        entry.1 += h.sum_ns.load(Ordering::Relaxed);
        for (acc, b) in entry.2.iter_mut().zip(&h.buckets) {
            *acc += b.load(Ordering::Relaxed); // lint:allow(atomic-ordering) shard cells are reached under the registry Mutex, whose unlock edge orders resets against merges; racing Relaxed increments are statistical
        }
    }

    Snapshot {
        counters: counters
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .map(|(name, value)| CounterSnap {
                name: name.to_owned(),
                value,
            })
            .collect(),
        gauges: r
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&name, &value)| GaugeSnap {
                name: name.to_owned(),
                value,
            })
            .collect(),
        histograms: hists
            .into_iter()
            .filter(|&(_, (count, _, _))| count > 0)
            .map(|(name, (count, sum_ns, buckets))| HistSnap {
                name: name.to_owned(),
                count,
                sum_secs: sum_ns as f64 / 1e9,
                buckets: buckets
                    .iter()
                    .take(FINITE_BUCKETS)
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| BucketSnap {
                        le_secs: bucket_le_secs(i),
                        count: c,
                    })
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(128), 0);
        assert_eq!(bucket_of(129), 1);
        assert_eq!(bucket_of(256), 1);
        assert_eq!(bucket_of(257), 2);
        // Overflow clamps to the last bucket.
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Bounds double.
        assert!((bucket_le_secs(1) / bucket_le_secs(0) - 2.0).abs() < 1e-12);
        // Last finite bound covers multi-hour simulated latencies.
        assert!(bucket_le_secs(FINITE_BUCKETS - 1) > 24.0 * 3600.0);
    }

    #[test]
    fn overflow_quantile_reports_outlier_magnitude_not_bucket_ceiling() {
        let last = bucket_le_secs(FINITE_BUCKETS - 1);
        let outlier = 10.0 * last;
        let snap = HistSnap {
            name: "t_overflow_seconds".to_owned(),
            count: 2,
            sum_secs: 1e-7 + outlier,
            buckets: vec![BucketSnap {
                le_secs: bucket_le_secs(0),
                count: 1,
            }],
        };
        // The rank landing in a finite bucket still interpolates.
        assert!(snap.quantile_secs(0.5) <= bucket_le_secs(0));
        // The rank landing in the overflow tracks the outlier's real
        // magnitude instead of snapping to the histogram ceiling.
        let p99 = snap.quantile_secs(0.99);
        assert!(p99 > last, "p99 snapped to the finite ceiling: {p99}");
        assert!(
            (p99 / outlier - 1.0).abs() < 0.01,
            "p99 {p99} vs outlier {outlier}"
        );

        // All-overflow histogram: no finite bucket at all used to
        // report 0.0 for every quantile.
        let all_over = HistSnap {
            name: "t_all_overflow_seconds".to_owned(),
            count: 1,
            sum_secs: 5.0 * last,
            buckets: Vec::new(),
        };
        assert!((all_over.quantile_secs(0.5) / (5.0 * last) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counters_merge_across_shards() {
        let _g = crate::test_serial();
        if !crate::ENABLED {
            return;
        }
        reset();
        let a = counter_handle("test_merge_total");
        let b = counter_handle("test_merge_total");
        a.add(3);
        b.add(4);
        b.inc();
        assert_eq!(snapshot().counter("test_merge_total"), 8);
        reset();
        assert_eq!(snapshot().counter("test_merge_total"), 0);
        // Handles stay live across a reset.
        a.inc();
        assert_eq!(snapshot().counter("test_merge_total"), 1);
        reset();
    }

    #[test]
    fn histogram_records_counts_sum_and_quantiles() {
        let _g = crate::test_serial();
        if !crate::ENABLED {
            return;
        }
        reset();
        let h = hist_handle("test_hist_seconds");
        for _ in 0..90 {
            h.observe_secs(0.001);
        }
        for _ in 0..10 {
            h.observe_secs(1.0);
        }
        let snap = snapshot();
        let hs = snap.histogram("test_hist_seconds").unwrap();
        assert_eq!(hs.count, 100);
        assert!((hs.sum_secs - 10.09).abs() < 1e-6);
        assert!((hs.mean_secs() - 0.1009).abs() < 1e-6);
        // p50 lands near 1 ms, p99 near 1 s (within-bucket interpolation).
        assert!(hs.quantile_secs(0.5) < 0.01);
        assert!(hs.quantile_secs(0.99) > 0.5);
        reset();
    }

    #[test]
    fn quantiles_interpolate_within_one_bucket_width_of_truth() {
        let _g = crate::test_serial();
        if !crate::ENABLED {
            return;
        }
        reset();
        let h = hist_handle("test_quantile_seconds");
        // Uniform over 0.01 s ..= 1.00 s: true p50 = 0.50 s, p99 = 0.99 s.
        for i in 1..=100 {
            h.observe_secs(i as f64 / 100.0);
        }
        let snap = snapshot();
        let hs = snap.histogram("test_quantile_seconds").unwrap();
        // One bucket width at value v: bounds double, so width = le − le/2.
        let width_at = |v: f64| {
            let ns = (v * 1e9) as u64;
            let le = bucket_le_secs(bucket_of(ns));
            le / 2.0
        };
        let p50 = hs.quantile_secs(0.5);
        let p99 = hs.quantile_secs(0.99);
        assert!(
            (p50 - 0.50).abs() <= width_at(0.50),
            "p50 {p50} further than one bucket width from 0.50"
        );
        assert!(
            (p99 - 0.99).abs() <= width_at(0.99),
            "p99 {p99} further than one bucket width from 0.99"
        );
        // The old snapping bug returned the raw bucket bound exactly; the
        // interpolated estimate must not sit on a power-of-two bound when
        // the rank lands mid-bucket.
        let le50 = bucket_le_secs(bucket_of((p50 * 1e9) as u64));
        assert!(p50 < le50, "p50 snapped to its bucket upper bound");
        reset();
    }

    #[test]
    fn gauges_set_and_high_water() {
        let _g = crate::test_serial();
        if !crate::ENABLED {
            return;
        }
        reset();
        gauge_set("test_gauge", 5.0);
        gauge_max("test_gauge", 3.0);
        assert_eq!(snapshot().gauge("test_gauge"), Some(5.0));
        gauge_max("test_gauge", 9.0);
        assert_eq!(snapshot().gauge("test_gauge"), Some(9.0));
        reset();
        assert_eq!(snapshot().gauge("test_gauge"), None);
    }

    #[test]
    fn poisoned_registry_lock_recovers() {
        let _g = crate::test_serial();
        if !crate::ENABLED {
            return;
        }
        crate::set_runtime_enabled(true);
        reset();
        // Poison the gauges lock: a thread panics while holding it.
        let _ = std::thread::spawn(|| {
            let _guard = registry().gauges.lock().unwrap();
            panic!("poison the gauges lock");
        })
        .join();
        assert!(registry().gauges.is_poisoned());
        // Every accessor recovers the data via `into_inner` instead of
        // propagating the panic to unrelated threads: the guarded map
        // is valid — the poisoned bit only records that a panic
        // happened elsewhere.
        gauge_set("test_poison_gauge", 2.5);
        gauge_max("test_poison_gauge", 7.5);
        assert_eq!(snapshot().gauge("test_poison_gauge"), Some(7.5));
        reset();
        assert_eq!(snapshot().gauge("test_poison_gauge"), None);
    }

    #[test]
    fn runtime_toggle_suppresses_recording() {
        let _g = crate::test_serial();
        if !crate::ENABLED {
            return;
        }
        reset();
        let c = counter_handle("test_toggle_total");
        crate::set_runtime_enabled(false);
        c.add(100);
        crate::set_runtime_enabled(true);
        c.add(1);
        assert_eq!(snapshot().counter("test_toggle_total"), 1);
        reset();
    }
}
