//! Online drift detectors for per-user habit decay.
//!
//! NetMaster's savings hold only while the mined habit keeps matching
//! reality. These detectors watch a per-day metric stream (prediction
//! hit-rate, energy-saving ratio, deferral latency) and raise an alarm
//! when the level shifts:
//!
//! * [`PageHinkley`] — the classic sequential change-point test:
//!   accumulates deviations from the running mean beyond a tolerance
//!   `delta` and alarms when the cumulative sum escapes its historical
//!   extremum by more than `lambda`. Sensitive to small sustained
//!   shifts.
//! * [`WindowedCusum`] — a moving-sum chart over the last `window`
//!   days against a baseline frozen after `warmup` samples: alarms
//!   when the windowed sum of deviations (beyond a slack of `k`
//!   standard deviations) exceeds `h` standard deviations. Robust to
//!   slow mean wander, sharp on step changes.
//! * [`MetricMonitor`] — one watched metric: both detectors plus an
//!   EWMA level and lifetime [`Welford`] moments; resets and re-warms
//!   after each alarm so one shift yields one alarm, not a storm.

use crate::timeseries::{DaySeries, Ewma, Welford};
use serde::{Deserialize, Serialize};

/// Which way a detector looks for change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Alarm when the level rises (e.g. deferral latency).
    Up,
    /// Alarm when the level falls (e.g. hit-rate, saving ratio).
    Down,
}

/// Page–Hinkley sequential change detector.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    direction: Direction,
    warmup: u64,
    n: u64,
    mean: f64,
    cum: f64,
    extremum: f64,
}

impl PageHinkley {
    /// A detector with tolerance `delta` (deviations smaller than this
    /// are ignored) and alarm threshold `lambda`, both in metric units.
    pub fn new(delta: f64, lambda: f64, direction: Direction) -> Self {
        PageHinkley {
            delta,
            lambda,
            direction,
            warmup: 0,
            n: 0,
            mean: 0.0,
            cum: 0.0,
            extremum: 0.0,
        }
    }

    /// Spends the first `warmup` samples estimating the mean only: the
    /// change statistic stays at zero and no alarm can fire, so an
    /// atypical start (a policy still learning) is not mistaken for
    /// drift.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Absorbs one sample; `true` when the change statistic crosses
    /// `lambda`.
    pub fn push(&mut self, x: f64) -> bool {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        if self.n <= self.warmup {
            return false;
        }
        let dev = match self.direction {
            // A drop makes (mean − x) positive.
            Direction::Down => self.mean - x - self.delta,
            Direction::Up => x - self.mean - self.delta,
        };
        self.cum += dev;
        if self.cum < self.extremum {
            self.extremum = self.cum;
        }
        self.statistic() > self.lambda
    }

    /// Current change statistic (distance of the cumulative sum above
    /// its running minimum).
    pub fn statistic(&self) -> f64 {
        self.cum - self.extremum
    }

    /// Alarm threshold.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Forgets all state (used after an alarm is handled).
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.extremum = 0.0;
    }
}

/// Windowed CUSUM: a moving sum of standardized deviations from a
/// frozen baseline over the last `window` samples.
#[derive(Debug, Clone)]
pub struct WindowedCusum {
    k: f64,
    h: f64,
    warmup: usize,
    direction: Direction,
    baseline: Welford,
    window: DaySeries,
}

impl WindowedCusum {
    /// A detector with slack `k` and threshold `h` (both in units of
    /// the baseline standard deviation), summing over the last
    /// `window` samples. The baseline mean/deviation freeze after the
    /// first `warmup` samples; no alarm can fire before then.
    pub fn new(window: usize, warmup: usize, k: f64, h: f64, direction: Direction) -> Self {
        WindowedCusum {
            k,
            h,
            warmup: warmup.max(2),
            direction,
            baseline: Welford::new(),
            window: DaySeries::new(window.max(1)),
        }
    }

    /// Absorbs one sample; `true` when the windowed sum of deviations
    /// beyond the slack exceeds `h` baseline standard deviations.
    pub fn push(&mut self, x: f64) -> bool {
        if (self.baseline.count() as usize) < self.warmup {
            self.baseline.push(x);
            return false;
        }
        let sigma = self.sigma();
        let raw = match self.direction {
            Direction::Down => self.baseline.mean() - x,
            Direction::Up => x - self.baseline.mean(),
        };
        // Deviations inside the slack band contribute nothing; this
        // keeps ordinary day-to-day noise from accumulating.
        self.window.push((raw - self.k * sigma).max(0.0));
        self.statistic() > self.h * sigma
    }

    /// Floor the deviation scale so a near-constant warmup period does
    /// not make the detector hair-triggered. Five percent of the level
    /// keeps a single quantization-sized dip (e.g. one hour out of a
    /// ~20-hour slot day) inside the slack band.
    fn sigma(&self) -> f64 {
        let spread = self.baseline.mean().abs().max(1.0) * 0.05;
        self.baseline.std_dev().max(spread)
    }

    /// Current windowed deviation sum, in metric units.
    pub fn statistic(&self) -> f64 {
        self.window.iter().sum()
    }

    /// Alarm threshold in metric units (`h · sigma`).
    pub fn threshold(&self) -> f64 {
        self.h * self.sigma()
    }

    /// `true` once the baseline has frozen and alarms can fire.
    pub fn armed(&self) -> bool {
        (self.baseline.count() as usize) >= self.warmup
    }

    /// Forgets all state, including the baseline (re-warms).
    pub fn reset(&mut self) {
        self.baseline = Welford::new();
        self.window = DaySeries::new(self.window.capacity());
    }
}

/// Which detector fired for a [`MetricMonitor`] sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftSignal {
    /// The Page–Hinkley statistic crossed `lambda`.
    PageHinkley,
    /// The windowed CUSUM crossed `h·sigma`.
    WindowedCusum,
}

/// An alarm raised by a [`MetricMonitor`]: which detector fired, at
/// what statistic, against what threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAlarm {
    /// Which detector fired (Page–Hinkley wins ties).
    pub signal: DriftSignal,
    /// The detector statistic at the moment of the alarm.
    pub statistic: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

/// One watched per-user metric: Page–Hinkley + windowed CUSUM, plus an
/// EWMA level and lifetime moments for the scorecard. After an alarm
/// both detectors reset and re-warm, so a single habit shift produces a
/// single alarm.
#[derive(Debug, Clone)]
pub struct MetricMonitor {
    ph: PageHinkley,
    cusum: WindowedCusum,
    ewma: Ewma,
    lifetime: Welford,
    alarms: u64,
}

impl MetricMonitor {
    /// Builds a monitor from detector parameters; see [`PageHinkley::new`]
    /// and [`WindowedCusum::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        direction: Direction,
        ph_delta: f64,
        ph_lambda: f64,
        window: usize,
        warmup: usize,
        cusum_k: f64,
        cusum_h: f64,
        ewma_alpha: f64,
    ) -> Self {
        MetricMonitor {
            ph: PageHinkley::new(ph_delta, ph_lambda, direction).with_warmup(warmup as u64),
            cusum: WindowedCusum::new(window, warmup, cusum_k, cusum_h, direction),
            ewma: Ewma::new(ewma_alpha),
            lifetime: Welford::new(),
            alarms: 0,
        }
    }

    /// Absorbs one per-day sample; returns the alarm if either
    /// detector fired.
    pub fn push(&mut self, x: f64) -> Option<DriftAlarm> {
        self.ewma.push(x);
        self.lifetime.push(x);
        let ph_fired = self.ph.push(x);
        let alarm = if ph_fired {
            Some(DriftAlarm {
                signal: DriftSignal::PageHinkley,
                statistic: self.ph.statistic(),
                threshold: self.ph.lambda(),
            })
        } else if self.cusum.push(x) {
            Some(DriftAlarm {
                signal: DriftSignal::WindowedCusum,
                statistic: self.cusum.statistic(),
                threshold: self.cusum.threshold(),
            })
        } else {
            None
        };
        if alarm.is_some() {
            self.alarms += 1;
            self.ph.reset();
            self.cusum.reset();
        }
        alarm
    }

    /// Smoothed recent level (EWMA), when any sample has been pushed.
    pub fn level(&self) -> Option<f64> {
        self.ewma.value()
    }

    /// Lifetime moments over every pushed sample.
    pub fn lifetime(&self) -> &Welford {
        &self.lifetime
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_hinkley_catches_a_drop_and_ignores_steady_state() {
        let mut ph = PageHinkley::new(0.02, 0.3, Direction::Down);
        // Steady ~0.6 with mild alternation: no alarm.
        for i in 0..30 {
            let x = 0.6 + if i % 2 == 0 { 0.03 } else { -0.03 };
            assert!(!ph.push(x), "false alarm at steady sample {i}");
        }
        // Level drops to 0.1: alarms within a few days.
        let mut fired_at = None;
        for day in 0..5 {
            if ph.push(0.1) {
                fired_at = Some(day);
                break;
            }
        }
        assert!(fired_at.is_some(), "drop never detected");
        assert!(fired_at.unwrap() <= 3, "detection too slow: {fired_at:?}");
    }

    #[test]
    fn page_hinkley_direction_up() {
        let mut ph = PageHinkley::new(0.02, 0.3, Direction::Up);
        for _ in 0..20 {
            assert!(!ph.push(0.2));
        }
        let mut fired = false;
        for _ in 0..5 {
            if ph.push(0.9) {
                fired = true;
                break;
            }
        }
        assert!(fired, "rise never detected");
        ph.reset();
        assert_eq!(ph.statistic(), 0.0);
    }

    #[test]
    fn windowed_cusum_freezes_baseline_then_alarms() {
        let mut c = WindowedCusum::new(5, 6, 0.5, 4.0, Direction::Down);
        assert!(!c.armed());
        for i in 0..12 {
            let x = 0.5 + if i % 2 == 0 { 0.02 } else { -0.02 };
            assert!(!c.push(x), "false alarm at steady sample {i}");
        }
        assert!(c.armed());
        let mut fired = false;
        for _ in 0..4 {
            if c.push(0.05) {
                fired = true;
                break;
            }
        }
        assert!(fired, "step drop never detected");
        c.reset();
        assert!(!c.armed());
        assert_eq!(c.statistic(), 0.0);
    }

    #[test]
    fn monitor_resets_after_alarm_and_counts() {
        let mut m = MetricMonitor::new(Direction::Down, 0.02, 0.3, 5, 4, 0.5, 4.0, 0.3);
        for _ in 0..15 {
            assert!(m.push(0.6).is_none());
        }
        let mut alarm = None;
        for _ in 0..6 {
            if let Some(a) = m.push(0.05) {
                alarm = Some(a);
                break;
            }
        }
        let alarm = alarm.expect("drop never detected");
        assert!(alarm.statistic > alarm.threshold);
        assert_eq!(m.alarms(), 1);
        // Post-reset the detectors re-warm: the new low level becomes
        // the new normal instead of alarming forever.
        let mut extra = 0;
        for _ in 0..10 {
            if m.push(0.05).is_some() {
                extra += 1;
            }
        }
        assert_eq!(extra, 0, "monitor kept alarming after reset");
        assert!(m.level().unwrap() < 0.2);
        assert!(m.lifetime().count() > 20);
    }
}
