//! The energy ledger: rolls [`ActivityTrace`](crate::ActivityTrace)
//! lifecycle records into per-app / per-day energy bills
//! (baseline-vs-NetMaster deltas) and exemplar links — from the
//! aggregate latency/saving histograms down to the worst offending
//! trace ids. This is the aggregation half of the flight recorder; the
//! recording half lives in [`crate::tracectx`].

use crate::tracectx::ActivityTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One app's energy bill for one day, summed over its apportioned
/// activities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppBill {
    /// Numeric app id from the trace.
    pub app: u16,
    /// Day the bill covers.
    pub day: usize,
    /// Activities billed (only records with an energy apportionment).
    pub activities: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Joules under the stock radio at natural times.
    pub baseline_j: f64,
    /// Joules apportioned under the NetMaster plan.
    pub netmaster_j: f64,
}

impl AppBill {
    /// Baseline minus NetMaster: positive when NetMaster saved energy.
    #[inline]
    pub fn saved_j(&self) -> f64 {
        self.baseline_j - self.netmaster_j
    }
}

/// Bills every (app, day) pair present in `records`, skipping records
/// whose energy has not been apportioned yet. Sorted by (day, app).
pub fn bill(records: &[ActivityTrace]) -> Vec<AppBill> {
    let mut by_key: BTreeMap<(usize, u16), AppBill> = BTreeMap::new();
    for r in records {
        let Some(e) = r.energy else { continue };
        let b = by_key.entry((r.day, r.app)).or_insert(AppBill {
            app: r.app,
            day: r.day,
            activities: 0,
            bytes: 0,
            baseline_j: 0.0,
            netmaster_j: 0.0,
        });
        b.activities += 1;
        b.bytes += r.bytes;
        b.baseline_j += e.baseline_j;
        b.netmaster_j += e.actual_j;
    }
    by_key.into_values().collect()
}

/// Collapses per-day bills into one bill per app (day set to 0),
/// sorted by descending baseline energy — the paper's "energy
/// devourers" ranking, now derived from the causal ledger.
pub fn by_app(bills: &[AppBill]) -> Vec<AppBill> {
    let mut by_app: BTreeMap<u16, AppBill> = BTreeMap::new();
    for b in bills {
        let t = by_app.entry(b.app).or_insert(AppBill {
            app: b.app,
            day: 0,
            activities: 0,
            bytes: 0,
            baseline_j: 0.0,
            netmaster_j: 0.0,
        });
        t.activities += b.activities;
        t.bytes += b.bytes;
        t.baseline_j += b.baseline_j;
        t.netmaster_j += b.netmaster_j;
    }
    let mut out: Vec<AppBill> = by_app.into_values().collect();
    out.sort_by(|a, b| {
        b.baseline_j
            .partial_cmp(&a.baseline_j)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.app.cmp(&b.app))
    });
    out
}

/// The `k` records with the largest scheduling latency — the exemplar
/// link from the `deferral_latency_seconds` /
/// `duty_service_latency_seconds` histogram tails to concrete trace
/// ids. Ties break toward the smaller trace id (deterministic).
pub fn worst_by_latency(records: &[ActivityTrace], k: usize) -> Vec<ActivityTrace> {
    let mut v: Vec<ActivityTrace> = records.to_vec();
    v.sort_by(|a, b| {
        b.latency_secs
            .cmp(&a.latency_secs)
            .then(a.trace_id.cmp(&b.trace_id))
    });
    v.truncate(k);
    v
}

/// The `k` apportioned records with the most NetMaster-plan energy —
/// the exemplar link from the saving aggregates to the activities that
/// still cost the most. Ties break toward the smaller trace id.
pub fn worst_by_energy(records: &[ActivityTrace], k: usize) -> Vec<ActivityTrace> {
    let mut v: Vec<ActivityTrace> = records
        .iter()
        .filter(|r| r.energy.is_some())
        .copied()
        .collect();
    let actual = |r: &ActivityTrace| r.energy.map_or(0.0, |e| e.actual_j);
    v.sort_by(|a, b| {
        actual(b)
            .partial_cmp(&actual(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.trace_id.cmp(&b.trace_id))
    });
    v.truncate(k);
    v
}

/// Screen-off share of traffic and energy, derived from ledger records
/// instead of aggregate counters (the paper's §III breakdown: ≈41% of
/// traffic happens screen-off).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ScreenOffShare {
    /// Fraction of activities that arrived screen-off.
    pub activity_fraction: f64,
    /// Fraction of bytes moved by screen-off arrivals.
    pub byte_fraction: f64,
    /// Fraction of baseline energy charged to screen-off arrivals.
    pub baseline_energy_fraction: f64,
}

/// Computes the screen-off breakdown over `records`.
pub fn screen_off_share(records: &[ActivityTrace]) -> ScreenOffShare {
    let (mut n, mut n_off) = (0u64, 0u64);
    let (mut bytes, mut bytes_off) = (0u64, 0u64);
    let (mut base, mut base_off) = (0f64, 0f64);
    for r in records {
        n += 1;
        bytes += r.bytes;
        let e = r.energy.map(|e| e.baseline_j).unwrap_or(0.0);
        base += e;
        if !r.screen_on {
            n_off += 1;
            bytes_off += r.bytes;
            base_off += e;
        }
    }
    let frac = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    ScreenOffShare {
        activity_fraction: frac(n_off as f64, n as f64),
        byte_fraction: frac(bytes_off as f64, bytes as f64),
        baseline_energy_fraction: frac(base_off, base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracectx::{EnergyShare, Outcome, PlanReason};

    fn rec(
        day: usize,
        idx: usize,
        app: u16,
        bytes: u64,
        on: bool,
        e: Option<(f64, f64)>,
    ) -> ActivityTrace {
        ActivityTrace {
            trace_id: ((day as u64) << 32) | idx as u64,
            day,
            app,
            natural_start: 100 * idx as u64,
            duration: 5,
            bytes,
            screen_on: on,
            plan: if on {
                PlanReason::ScreenOn
            } else {
                PlanReason::Untrained
            },
            outcome: if on {
                Outcome::Natural
            } else {
                Outcome::DutyServed
            },
            executed_at: 100 * idx as u64 + idx as u64,
            latency_secs: idx as u64,
            energy: e.map(|(actual_j, baseline_j)| EnergyShare {
                actual_j,
                baseline_j,
            }),
        }
    }

    #[test]
    fn bills_group_by_app_and_day() {
        let records = vec![
            rec(0, 0, 1, 100, false, Some((1.0, 3.0))),
            rec(0, 1, 1, 200, false, Some((2.0, 4.0))),
            rec(0, 2, 2, 50, true, Some((5.0, 5.0))),
            rec(1, 0, 1, 10, false, Some((0.5, 1.0))),
            rec(1, 1, 3, 10, false, None), // unapportioned: skipped
        ];
        let bills = bill(&records);
        assert_eq!(bills.len(), 3);
        assert_eq!((bills[0].day, bills[0].app, bills[0].activities), (0, 1, 2));
        assert_eq!(bills[0].bytes, 300);
        assert!((bills[0].baseline_j - 7.0).abs() < 1e-12);
        assert!((bills[0].saved_j() - 4.0).abs() < 1e-12);
        assert_eq!((bills[2].day, bills[2].app), (1, 1));

        let apps = by_app(&bills);
        assert_eq!(apps.len(), 2);
        // App 1 has the bigger baseline (8 J vs 5 J) and ranks first.
        assert_eq!(apps[0].app, 1);
        assert_eq!(apps[0].activities, 3);
        assert!((apps[0].baseline_j - 8.0).abs() < 1e-12);
    }

    #[test]
    fn exemplars_rank_worst_first() {
        let records = vec![
            rec(0, 0, 1, 1, false, Some((9.0, 9.0))),
            rec(0, 1, 1, 1, false, Some((1.0, 2.0))),
            rec(0, 2, 1, 1, false, Some((4.0, 4.0))),
            rec(0, 3, 1, 1, false, None),
        ];
        let lat = worst_by_latency(&records, 2);
        assert_eq!(
            lat.iter().map(ActivityTrace::index).collect::<Vec<_>>(),
            vec![3, 2]
        );
        let en = worst_by_energy(&records, 2);
        assert_eq!(
            en.iter().map(ActivityTrace::index).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert!(worst_by_energy(&[], 5).is_empty());
    }

    #[test]
    fn screen_off_share_matches_hand_count() {
        let records = vec![
            rec(0, 0, 1, 300, false, Some((1.0, 6.0))),
            rec(0, 1, 1, 100, true, Some((2.0, 2.0))),
            rec(0, 2, 1, 100, true, Some((2.0, 2.0))),
        ];
        let s = screen_off_share(&records);
        assert!((s.activity_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.byte_fraction - 0.6).abs() < 1e-12);
        assert!((s.baseline_energy_fraction - 0.6).abs() < 1e-12);
        assert_eq!(screen_off_share(&[]), ScreenOffShare::default());
    }
}
