//! Radio power-model configuration.
//!
//! NetMaster estimates energy with the *model-based* approach of its
//! references (Huang et al. MobiSys'12 [11], Schulman et al. [8], Maier
//! et al. [5]): the cellular radio is a state machine whose states burn
//! fixed power, promotions cost time and energy, and inactivity timers
//! ("tails") keep the radio hot long after the last byte. The constants
//! below are the published WCDMA and LTE numbers from those papers.

use serde::{Deserialize, Serialize};

/// Milliwatts.
pub type Milliwatts = f64;

/// One inactivity-timer phase after the last transfer: the radio lingers
/// for `secs` at `mw` before demoting to the next phase (or idle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailPhase {
    /// Phase duration in seconds.
    pub secs: f64,
    /// Power draw during the phase.
    pub mw: Milliwatts,
}

/// Radio-technology power parameters, expressive enough for both the
/// 3G/WCDMA RRC machine (DCH/FACH/IDLE) and LTE (CR/DRX/idle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrcConfig {
    /// Human-readable technology name.
    pub name: String,
    /// IDLE→active promotion latency in seconds.
    pub promo_secs: f64,
    /// Power during promotion.
    pub promo_mw: Milliwatts,
    /// Power while actively transferring (DCH / LTE CR).
    pub active_mw: Milliwatts,
    /// Inactivity-tail phases after the last transfer, in demotion order
    /// (WCDMA: DCH tail then FACH tail; LTE: DRX tail).
    pub tail_phases: Vec<TailPhase>,
    /// Baseline idle power attributable to the radio (usually folded
    /// into the device baseline; kept separate and defaulted to 0 so
    /// savings are savings *of network activities*, as the paper scopes).
    pub idle_mw: Milliwatts,
}

impl RrcConfig {
    /// 3G / WCDMA constants (Huang et al. [11], Qian et al. [10]):
    /// DCH ≈ 800 mW, FACH ≈ 460 mW, IDLE→DCH promotion ≈ 2 s at
    /// ≈ 550 mW, DCH→FACH inactivity timer ≈ 5 s, FACH→IDLE ≈ 12 s.
    pub fn wcdma() -> Self {
        RrcConfig {
            name: "WCDMA".into(),
            promo_secs: 2.0,
            promo_mw: 550.0,
            active_mw: 800.0,
            tail_phases: vec![
                TailPhase {
                    secs: 5.0,
                    mw: 800.0,
                }, // DCH tail
                TailPhase {
                    secs: 12.0,
                    mw: 460.0,
                }, // FACH tail
            ],
            idle_mw: 0.0,
        }
    }

    /// LTE constants (Huang et al. MobiSys'12): promotion ≈ 260 ms at
    /// ≈ 1210 mW, continuous reception ≈ 1210 mW, tail ≈ 11.6 s of
    /// DRX-dominated linger at ≈ 1060 mW.
    pub fn lte() -> Self {
        RrcConfig {
            name: "LTE".into(),
            promo_secs: 0.26,
            promo_mw: 1210.0,
            active_mw: 1210.0,
            tail_phases: vec![TailPhase {
                secs: 11.6,
                mw: 1060.0,
            }],
            idle_mw: 0.0,
        }
    }

    /// Total tail duration in seconds.
    pub fn tail_secs(&self) -> f64 {
        self.tail_phases.iter().map(|p| p.secs).sum()
    }

    /// Energy (J) of the full tail.
    pub fn tail_energy_j(&self) -> f64 {
        self.tail_phases
            .iter()
            .map(|p| p.secs * p.mw / 1_000.0)
            .sum()
    }

    /// Energy (J) of the first `dt` seconds of tail (prefix), saturating
    /// at the full tail.
    pub fn tail_prefix_energy_j(&self, dt: f64) -> f64 {
        let mut remaining = dt.max(0.0);
        let mut joules = 0.0;
        for p in &self.tail_phases {
            let take = remaining.min(p.secs);
            joules += take * p.mw / 1_000.0;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }
        joules
    }

    /// Energy (J) of one promotion.
    pub fn promo_energy_j(&self) -> f64 {
        self.promo_secs * self.promo_mw / 1_000.0
    }

    /// Energy (J) of `secs` of active transfer.
    pub fn active_energy_j(&self, secs: f64) -> f64 {
        secs * self.active_mw / 1_000.0
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.promo_secs < 0.0 || self.promo_mw < 0.0 {
            return Err("negative promotion parameters".into());
        }
        if self.active_mw <= 0.0 {
            return Err("active power must be positive".into());
        }
        if self.tail_phases.iter().any(|p| p.secs < 0.0 || p.mw < 0.0) {
            return Err("negative tail phase".into());
        }
        Ok(())
    }
}

/// How aggressively the tail is cut after the last transfer.
///
/// The stock device lets the full inactivity timers run ([`Full`]);
/// fast dormancy requests demotion after a short hold; NetMaster's
/// scheduling component flips the data radio off via `svc data disable`
/// as soon as a scheduled batch completes ([`Immediate`]).
///
/// [`Full`]: TailPolicy::Full
/// [`Immediate`]: TailPolicy::Immediate
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TailPolicy {
    /// Full inactivity timers (default Android behaviour).
    Full,
    /// Tail truncated after the given seconds (fast dormancy).
    FastDormancy(f64),
    /// Radio switched off right after the transfer (no tail).
    Immediate,
}

impl TailPolicy {
    /// Effective tail seconds under this policy for a given config.
    pub fn tail_secs(&self, cfg: &RrcConfig) -> f64 {
        match *self {
            TailPolicy::Full => cfg.tail_secs(),
            TailPolicy::FastDormancy(s) => s.max(0.0).min(cfg.tail_secs()),
            TailPolicy::Immediate => 0.0,
        }
    }

    /// Effective tail energy (J) under this policy.
    pub fn tail_energy_j(&self, cfg: &RrcConfig) -> f64 {
        cfg.tail_prefix_energy_j(self.tail_secs(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcdma_constants_match_published_model() {
        let cfg = RrcConfig::wcdma();
        assert_eq!(cfg.validate(), Ok(()));
        assert!((cfg.tail_secs() - 17.0).abs() < 1e-9);
        // 5 s × 0.8 W + 12 s × 0.46 W = 4.0 + 5.52 = 9.52 J
        assert!((cfg.tail_energy_j() - 9.52).abs() < 1e-9);
        // 2 s × 0.55 W = 1.1 J
        assert!((cfg.promo_energy_j() - 1.1).abs() < 1e-9);
        assert!((cfg.active_energy_j(10.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn lte_constants() {
        let cfg = RrcConfig::lte();
        assert_eq!(cfg.validate(), Ok(()));
        assert!((cfg.tail_secs() - 11.6).abs() < 1e-9);
        assert!(cfg.promo_secs < 1.0, "LTE promotion is sub-second");
    }

    #[test]
    fn tail_prefix_energy_crosses_phases() {
        let cfg = RrcConfig::wcdma();
        // 3 s into the DCH tail.
        assert!((cfg.tail_prefix_energy_j(3.0) - 2.4).abs() < 1e-9);
        // 5 s DCH + 2 s FACH = 4.0 + 0.92.
        assert!((cfg.tail_prefix_energy_j(7.0) - 4.92).abs() < 1e-9);
        // Saturates at full tail.
        assert!((cfg.tail_prefix_energy_j(100.0) - cfg.tail_energy_j()).abs() < 1e-9);
        assert_eq!(cfg.tail_prefix_energy_j(-5.0), 0.0);
    }

    #[test]
    fn tail_policy_effects() {
        let cfg = RrcConfig::wcdma();
        assert_eq!(TailPolicy::Immediate.tail_secs(&cfg), 0.0);
        assert_eq!(TailPolicy::Immediate.tail_energy_j(&cfg), 0.0);
        assert!((TailPolicy::FastDormancy(3.0).tail_secs(&cfg) - 3.0).abs() < 1e-9);
        assert!((TailPolicy::FastDormancy(99.0).tail_secs(&cfg) - 17.0).abs() < 1e-9);
        assert!((TailPolicy::Full.tail_energy_j(&cfg) - 9.52).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = RrcConfig::wcdma();
        cfg.active_mw = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = RrcConfig::wcdma();
        cfg.promo_secs = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = RrcConfig::wcdma();
        cfg.tail_phases[0].mw = -2.0;
        assert!(cfg.validate().is_err());
    }
}
