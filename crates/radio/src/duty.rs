//! Energy cost of duty-cycled radio wake-ups.
//!
//! NetMaster's real-time adjustment keeps the radio off while the screen
//! is off and wakes it periodically so "Special Apps" can sync
//! (§IV-C2). Each wake-up costs a promotion, a listen window, and —
//! if nothing happens — a demotion; this module prices that.

use crate::power::RrcConfig;
use serde::{Deserialize, Serialize};

/// Parameters of one duty-cycle wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DutyCycleCost {
    /// Seconds the radio listens for pending traffic after promoting.
    pub listen_secs: f64,
    /// Power while listening (typically FACH-level).
    pub listen_mw: f64,
}

impl Default for DutyCycleCost {
    fn default() -> Self {
        DutyCycleCost {
            listen_secs: 2.0,
            listen_mw: 460.0,
        }
    }
}

impl DutyCycleCost {
    /// Energy (J) of one *empty* wake-up: promote, listen, drop.
    pub fn empty_wakeup_j(&self, cfg: &RrcConfig) -> f64 {
        cfg.promo_energy_j() + self.listen_secs * self.listen_mw / 1_000.0
    }

    /// Radio-on seconds of one empty wake-up.
    pub fn empty_wakeup_secs(&self, cfg: &RrcConfig) -> f64 {
        cfg.promo_secs + self.listen_secs
    }

    /// Energy of `n` empty wake-ups.
    pub fn total_empty_j(&self, cfg: &RrcConfig, n: u64) -> f64 {
        n as f64 * self.empty_wakeup_j(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_wakeup_cost() {
        let cfg = RrcConfig::wcdma();
        let d = DutyCycleCost::default();
        // 1.1 J promo + 2 s × 0.46 W listen = 2.02 J
        assert!((d.empty_wakeup_j(&cfg) - 2.02).abs() < 1e-9);
        assert!((d.empty_wakeup_secs(&cfg) - 4.0).abs() < 1e-9);
        assert!((d.total_empty_j(&cfg, 10) - 20.2).abs() < 1e-9);
        assert_eq!(d.total_empty_j(&cfg, 0), 0.0);
    }

    #[test]
    fn wakeups_are_cheaper_than_idling_in_tail() {
        // One empty wake-up must cost less than 17 s of tail, otherwise
        // duty cycling would never pay off.
        let cfg = RrcConfig::wcdma();
        let d = DutyCycleCost::default();
        assert!(d.empty_wakeup_j(&cfg) < cfg.tail_energy_j());
    }
}
