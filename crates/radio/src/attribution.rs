//! Per-app energy attribution — eprof-style fine-grained accounting
//! (Pathak et al., the paper's ref [9]): which apps are the *energy
//! devourers* of the title.
//!
//! The hard part of attributing cellular energy is the shared state
//! machine: when several apps' transfers ride one radio session, who
//! pays for the promotion and the tail? Following eprof's
//! last-trigger convention: the app that *wakes* the radio pays the
//! promotion, the app whose transfer *ends last* pays the tail (its
//! traffic is what kept the radio lingering), and active energy splits
//! by each app's own transfer seconds.

use crate::rrc::RrcModel;
use netmaster_trace::event::AppId;
use netmaster_trace::time::{merge_intervals, Interval};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// One app's share of the radio bill.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AppEnergy {
    /// Energy from the app's own transfer seconds (J).
    pub active_j: f64,
    /// Promotion energy charged to this app (J).
    pub promo_j: f64,
    /// Tail energy charged to this app (J).
    pub tail_j: f64,
    /// Radio sessions this app initiated.
    pub wakeups: u64,
    /// Seconds of this app's transfers.
    pub transfer_secs: f64,
}

impl AppEnergy {
    /// Total joules charged.
    pub fn total_j(&self) -> f64 {
        self.active_j + self.promo_j + self.tail_j
    }

    /// Overhead (promotion + tail) share of the app's bill.
    pub fn overhead_fraction(&self) -> f64 {
        let t = self.total_j();
        if t <= 0.0 {
            return 0.0;
        }
        (self.promo_j + self.tail_j) / t
    }
}

/// Attributes the energy of a transfer timeline to apps.
///
/// `transfers` are `(app, span)` pairs (need not be sorted). The sum of
/// all apps' totals equals [`RrcModel::account`]'s total for the same
/// spans exactly (conservation is unit-tested).
///
/// ```
/// use netmaster_radio::attribution::attribute;
/// use netmaster_radio::{Interval, RrcModel};
/// use netmaster_trace::event::AppId;
///
/// let model = RrcModel::wcdma_default();
/// // The chat app wakes the radio; the mail app's sync rides along
/// // and ends last, so it owns the tail.
/// let att = attribute(&model, &[
///     (AppId(1), Interval::new(0, 10)),
///     (AppId(2), Interval::new(10, 25)),
/// ]);
/// assert!(att[&AppId(1)].promo_j > 0.0);
/// assert_eq!(att[&AppId(2)].promo_j, 0.0);
/// assert!(att[&AppId(2)].tail_j > att[&AppId(1)].tail_j);
/// ```
pub fn attribute(model: &RrcModel, transfers: &[(AppId, Interval)]) -> HashMap<AppId, AppEnergy> {
    apportion(model, transfers)
}

/// Apportions a transfer timeline's energy to arbitrary owner keys.
///
/// This is [`attribute`] generalized over the owner: per-app billing
/// uses `K = AppId`, the causal ledger apportions per-activity with
/// `K` a trace id — each transfer then receives its own exact share of
/// promotion, active, and tail energy, and the bill conserves
/// [`RrcModel::account`]'s total for the same spans.
///
/// Conventions (eprof's last-trigger rule): the owner that wakes the
/// radio pays the promotion, the owner whose transfer ends last pays
/// the trailing tail, elapsed tail inside a session is paid by the
/// owner whose transfer preceded the gap, and active energy splits
/// proportionally to each owner's seconds inside every merged burst.
pub fn apportion<K: Copy + Eq + Hash>(
    model: &RrcModel,
    transfers: &[(K, Interval)],
) -> HashMap<K, AppEnergy> {
    let mut out: HashMap<K, AppEnergy> = HashMap::new();
    if transfers.is_empty() {
        return out;
    }
    let cfg = &model.config;
    let tail_len = model.tail_secs();

    // Radio sessions: merged spans further fused across tail-riding
    // gaps (a transfer arriving inside the previous tail extends the
    // same session, as in `account`).
    let spans: Vec<Interval> = transfers.iter().map(|&(_, s)| s).collect();
    let merged = merge_intervals(spans);
    let mut sessions: Vec<Interval> = Vec::new();
    for span in merged {
        match sessions.last_mut() {
            Some(last) if (span.start as f64) <= last.end as f64 + tail_len => {
                last.end = last.end.max(span.end);
            }
            _ => sessions.push(span),
        }
    }

    // Raw transfer seconds are informational (they may overlap).
    for &(key, span) in transfers {
        out.entry(key).or_default().transfer_secs += span.len() as f64;
    }
    // Active energy: each merged burst is charged once (as in
    // `account`) and split among the owners transferring during it,
    // proportionally to their own seconds inside the burst — so
    // concurrent transfers share rather than double-charge.
    let bursts_all = merge_intervals(transfers.iter().map(|&(_, s)| s).collect());
    for burst in &bursts_all {
        let shares: Vec<(K, f64)> = transfers
            .iter()
            .filter_map(|&(key, s)| s.intersect(burst).map(|o| (key, o.len() as f64)))
            .collect();
        let total_share: f64 = shares.iter().map(|&(_, s)| s).sum();
        if total_share <= 0.0 {
            continue;
        }
        let burst_j = cfg.active_energy_j(burst.len() as f64);
        for (key, share) in shares {
            out.entry(key).or_default().active_j += burst_j * share / total_share;
        }
    }

    // Overheads per session: promotion to the earliest-starting
    // transfer's owner, tail to the latest-ending transfer's owner.
    // The session-internal tail gaps (elapsed tail between bursts
    // inside one session) are charged to the owner whose transfer
    // preceded the gap. Every payer is found by construction — each
    // session contains at least one transfer and every burst boundary
    // is some transfer's end — so there is no fallback path.
    for session in &sessions {
        // Transfers inside this session, ordered by start.
        let mut inside: Vec<&(K, Interval)> = transfers
            .iter()
            .filter(|(_, s)| s.overlaps(session))
            .collect();
        inside.sort_by_key(|(_, s)| (s.start, s.end));
        let Some(&&(first_key, _)) = inside.first() else {
            continue;
        };
        let e = out.entry(first_key).or_default();
        e.promo_j += cfg.promo_energy_j();
        e.wakeups += 1;

        // Latest end wins; on ties the later element in start order
        // (matching `Iterator::max_by_key`, which keeps the last max).
        let mut last = inside[0];
        for t in &inside[1..] {
            if t.1.end >= last.1.end {
                last = t;
            }
        }
        out.entry(last.0).or_default().tail_j += model.tail_policy.tail_energy_j(cfg);

        // Internal elapsed-tail gaps: walk the merged bursts of this
        // session; each gap's tail-prefix energy goes to the owner
        // whose transfer ended the preceding burst.
        let bursts = merge_intervals(inside.iter().map(|(_, s)| *s).collect());
        for w in bursts.windows(2) {
            let gap = (w[1].start - w[0].end) as f64;
            if gap <= 0.0 {
                continue;
            }
            let mut payer: Option<&(K, Interval)> = None;
            for t in &inside {
                if t.1.end <= w[0].end && payer.is_none_or(|p| t.1.end >= p.1.end) {
                    payer = Some(t);
                }
            }
            // A burst boundary is always some transfer's end.
            if let Some(&(key, _)) = payer {
                out.entry(key).or_default().tail_j += cfg.tail_prefix_energy_j(gap);
            }
        }
    }
    out
}

/// Ranks apps by total charged energy, descending.
pub fn ranked(attribution: &HashMap<AppId, AppEnergy>) -> Vec<(AppId, AppEnergy)> {
    let mut v: Vec<(AppId, AppEnergy)> = attribution.iter().map(|(&a, &e)| (a, e)).collect();
    v.sort_by(|a, b| b.1.total_j().total_cmp(&a.1.total_j()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn conservation_check(model: &RrcModel, transfers: &[(AppId, Interval)]) {
        let spans: Vec<Interval> = transfers.iter().map(|&(_, s)| s).collect();
        let total = model.account(&spans).total_j();
        let attributed: f64 = attribute(model, transfers)
            .values()
            .map(AppEnergy::total_j)
            .sum();
        assert!(
            (total - attributed).abs() < 1e-6,
            "conservation violated: account {total} vs attributed {attributed}"
        );
    }

    #[test]
    fn lone_app_pays_everything() {
        let m = RrcModel::wcdma_default();
        let t = [(AppId(1), iv(100, 110))];
        let a = attribute(&m, &t);
        let e = a[&AppId(1)];
        assert!((e.active_j - 8.0).abs() < 1e-9);
        assert!((e.promo_j - 1.1).abs() < 1e-9);
        assert!((e.tail_j - 9.52).abs() < 1e-9);
        assert_eq!(e.wakeups, 1);
        conservation_check(&m, &t);
    }

    #[test]
    fn shared_session_splits_overheads_by_trigger() {
        let m = RrcModel::wcdma_default();
        // App 1 wakes the radio; app 2's transfer ends last.
        let t = [(AppId(1), iv(0, 10)), (AppId(2), iv(10, 30))];
        let a = attribute(&m, &t);
        assert!(
            (a[&AppId(1)].promo_j - 1.1).abs() < 1e-9,
            "initiator pays promo"
        );
        assert_eq!(a[&AppId(1)].tail_j, 0.0);
        assert!(
            (a[&AppId(2)].tail_j - 9.52).abs() < 1e-9,
            "last app pays tail"
        );
        assert_eq!(a[&AppId(2)].promo_j, 0.0);
        assert_eq!(a[&AppId(1)].wakeups, 1);
        assert_eq!(a[&AppId(2)].wakeups, 0);
        conservation_check(&m, &t);
    }

    #[test]
    fn tail_riding_gap_charged_to_preceding_app() {
        let m = RrcModel::wcdma_default();
        // App 1's transfer, 5 s of its tail elapse, app 2 rides it.
        let t = [(AppId(1), iv(0, 10)), (AppId(2), iv(15, 25))];
        let a = attribute(&m, &t);
        // App 1: promo + its 5 s elapsed-tail gap (5 × 0.8 = 4 J).
        assert!((a[&AppId(1)].promo_j - 1.1).abs() < 1e-9);
        assert!((a[&AppId(1)].tail_j - 4.0).abs() < 1e-9);
        // App 2: the trailing full tail.
        assert!((a[&AppId(2)].tail_j - 9.52).abs() < 1e-9);
        conservation_check(&m, &t);
    }

    #[test]
    fn separate_sessions_pay_separately() {
        let m = RrcModel::wcdma_default();
        let t = [(AppId(1), iv(0, 10)), (AppId(2), iv(5_000, 5_010))];
        let a = attribute(&m, &t);
        for app in [AppId(1), AppId(2)] {
            assert!((a[&app].promo_j - 1.1).abs() < 1e-9);
            assert!((a[&app].tail_j - 9.52).abs() < 1e-9);
            assert_eq!(a[&app].wakeups, 1);
        }
        conservation_check(&m, &t);
    }

    #[test]
    fn conservation_on_random_timelines() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let m = RrcModel::wcdma_default();
        for _ in 0..50 {
            let n = rng.random_range(1..25);
            let t: Vec<(AppId, Interval)> = (0..n)
                .map(|_| {
                    let s = rng.random_range(0..20_000u64);
                    (
                        AppId(rng.random_range(0..5)),
                        iv(s, s + rng.random_range(1..60u64)),
                    )
                })
                .collect();
            conservation_check(&m, &t);
        }
    }

    #[test]
    fn per_activity_apportionment_conserves_total_energy() {
        // The ledger keys transfers by trace id (u64) instead of app:
        // every activity gets its own exact share, and the per-activity
        // bill must conserve the timeline total — fixed seed, both tail
        // policies.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for model in [RrcModel::wcdma_default(), RrcModel::wcdma_immediate_off()] {
            for _ in 0..20 {
                let n = rng.random_range(1..40u64);
                let t: Vec<(u64, Interval)> = (0..n)
                    .map(|id| {
                        let s = rng.random_range(0..30_000u64);
                        (id, iv(s, s + rng.random_range(1..60u64)))
                    })
                    .collect();
                let spans: Vec<Interval> = t.iter().map(|&(_, s)| s).collect();
                let total = model.account(&spans).total_j();
                let bill = apportion(&model, &t);
                assert_eq!(bill.len(), n as usize, "every activity is billed");
                let attributed: f64 = bill.values().map(AppEnergy::total_j).sum();
                assert!(
                    (total - attributed).abs() < 1e-9,
                    "per-activity conservation violated: {total} vs {attributed}"
                );
            }
        }
    }

    #[test]
    fn apportion_matches_attribute_for_app_keys() {
        // `attribute` is `apportion` specialized to AppId; the two must
        // agree field-for-field on a shared-session timeline.
        let m = RrcModel::wcdma_default();
        let t = [
            (AppId(1), iv(0, 10)),
            (AppId(2), iv(15, 25)),
            (AppId(1), iv(20, 30)),
            (AppId(3), iv(9_000, 9_005)),
        ];
        let a = attribute(&m, &t);
        let b = apportion(&m, &t);
        assert_eq!(a.len(), b.len());
        for (app, e) in &a {
            assert_eq!(b[app], *e);
        }
    }

    #[test]
    fn ranking_orders_by_total() {
        let m = RrcModel::wcdma_default();
        let t = [
            (AppId(1), iv(0, 100)),       // heavy
            (AppId(2), iv(5_000, 5_002)), // light
        ];
        let r = ranked(&attribute(&m, &t));
        assert_eq!(r[0].0, AppId(1));
        assert!(r[0].1.total_j() > r[1].1.total_j());
        // Light app's bill is overhead-dominated.
        assert!(r[1].1.overhead_fraction() > 0.8);
    }

    #[test]
    fn empty_input_is_empty() {
        let m = RrcModel::wcdma_default();
        assert!(attribute(&m, &[]).is_empty());
    }

    #[test]
    fn immediate_off_attributes_no_tail() {
        let m = RrcModel::wcdma_immediate_off();
        let t = [(AppId(1), iv(0, 10)), (AppId(2), iv(10, 20))];
        let a = attribute(&m, &t);
        assert_eq!(a[&AppId(1)].tail_j + a[&AppId(2)].tail_j, 0.0);
        conservation_check(&m, &t);
    }
}
