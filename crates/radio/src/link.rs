//! Carrier link model: average and peak rates, transfer durations, and
//! the knapsack slot capacity `C(t_i) = Bandwidth · |t_i|` (Eq. 5).

use serde::{Deserialize, Serialize};

/// Average/peak link rates in bytes per second.
///
/// The paper's deployment used China Unicom WCDMA; the defaults are
/// typical 2013-era WCDMA figures. Only the average rate enters the
/// optimizer (slot capacity); the peak rate bounds instantaneous
/// transfer speed and is what Fig. 7(c) shows no scheme can improve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Average achievable downlink rate (B/s).
    pub avg_down_bps: f64,
    /// Average achievable uplink rate (B/s).
    pub avg_up_bps: f64,
    /// Peak downlink rate (B/s), channel-state bound.
    pub peak_down_bps: f64,
    /// Peak uplink rate (B/s).
    pub peak_up_bps: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            avg_down_bps: 150_000.0, // ≈ 1.2 Mbit/s
            avg_up_bps: 60_000.0,    // ≈ 0.5 Mbit/s
            peak_down_bps: 500_000.0,
            peak_up_bps: 180_000.0,
        }
    }
}

impl LinkModel {
    /// Combined average bandwidth used for slot capacities.
    pub fn avg_total_bps(&self) -> f64 {
        self.avg_down_bps + self.avg_up_bps
    }

    /// Knapsack capacity of a slot `slot_secs` long, in bytes (Eq. 5).
    pub fn slot_capacity_bytes(&self, slot_secs: u64) -> u64 {
        (self.avg_total_bps() * slot_secs as f64) as u64
    }

    /// Seconds to move `bytes` at the average rate (at least 1 s).
    pub fn transfer_secs(&self, bytes_down: u64, bytes_up: u64) -> u64 {
        let down = bytes_down as f64 / self.avg_down_bps;
        let up = bytes_up as f64 / self.avg_up_bps;
        (down + up).ceil().max(1.0) as u64
    }

    /// Seconds to move `bytes` flat-out at peak rate (at least 1 s).
    pub fn peak_transfer_secs(&self, bytes_down: u64, bytes_up: u64) -> u64 {
        let down = bytes_down as f64 / self.peak_down_bps;
        let up = bytes_up as f64 / self.peak_up_bps;
        (down + up).ceil().max(1.0) as u64
    }

    /// Sanity check.
    pub fn validate(&self) -> Result<(), String> {
        if self.avg_down_bps <= 0.0 || self.avg_up_bps <= 0.0 {
            return Err("average rates must be positive".into());
        }
        if self.peak_down_bps < self.avg_down_bps || self.peak_up_bps < self.avg_up_bps {
            return Err("peak rates below average rates".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(LinkModel::default().validate(), Ok(()));
    }

    #[test]
    fn slot_capacity_is_linear_in_length() {
        let l = LinkModel::default();
        assert_eq!(l.slot_capacity_bytes(0), 0);
        assert_eq!(l.slot_capacity_bytes(10), 10 * l.slot_capacity_bytes(1));
        assert_eq!(l.slot_capacity_bytes(1), 210_000);
    }

    #[test]
    fn transfer_secs_rounds_up_with_floor_of_one() {
        let l = LinkModel::default();
        assert_eq!(l.transfer_secs(0, 0), 1);
        assert_eq!(l.transfer_secs(150_000, 0), 1);
        assert_eq!(l.transfer_secs(300_000, 0), 2);
        assert_eq!(l.transfer_secs(150_000, 60_000), 2);
        assert!(l.peak_transfer_secs(1_000_000, 0) < l.transfer_secs(1_000_000, 0));
    }

    #[test]
    fn validation_rejects_inverted_rates() {
        let l = LinkModel {
            peak_down_bps: 10.0,
            ..Default::default()
        };
        assert!(l.validate().is_err());
        let l = LinkModel {
            avg_up_bps: 0.0,
            ..Default::default()
        };
        assert!(l.validate().is_err());
    }
}
