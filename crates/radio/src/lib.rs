//! # netmaster-radio
//!
//! Cellular radio substrate for the NetMaster reproduction: RRC
//! state-machine power models (WCDMA and LTE, constants from Huang et
//! al. MobiSys'12), energy accounting over transfer timelines, carrier
//! link rates and slot capacities, and duty-cycle wake-up pricing.
//!
//! The paper estimates energy with exactly this model-based approach
//! (§VI-A: "we adopt the power model proposed in [5, 8, 11]"), so this
//! crate is a reimplementation of the published model rather than an
//! approximation of hardware measurements.
//!
//! ```
//! use netmaster_radio::{RrcModel, Interval};
//!
//! let radio = RrcModel::wcdma_default();
//! // Two isolated 10-second transfers...
//! let separate = radio.account(&[Interval::new(0, 10), Interval::new(600, 610)]);
//! // ...cost far more than the same transfers batched together.
//! let batched = radio.account(&[Interval::new(0, 10), Interval::new(10, 20)]);
//! assert!(batched.total_j() < 0.75 * separate.total_j());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod battery;
pub mod duty;
pub mod fach;
pub mod link;
pub mod power;
pub mod rrc;
pub mod timeline;

pub use attribution::{apportion, attribute, ranked, AppEnergy};
pub use battery::BatteryModel;
pub use duty::DutyCycleCost;
pub use fach::{FachConfig, SizeAwareRrc};
pub use link::LinkModel;
pub use power::{Milliwatts, RrcConfig, TailPhase, TailPolicy};
pub use rrc::{EnergyBreakdown, RrcModel};
pub use timeline::{RadioState, Segment, Timeline};

// Re-export the interval type the accounting API speaks.
pub use netmaster_trace::time::Interval;
