//! Per-state radio timelines: the exact sequence of RRC states a
//! transfer set drives the radio through. The energy accountant
//! ([`RrcModel::account`]) integrates this; the timeline exposes it
//! for inspection, the `netmaster timeline` CLI view, and tests that
//! cross-check the integral against the explicit state sequence.

use crate::power::TailPhase;
use crate::rrc::RrcModel;
use netmaster_trace::time::{merge_intervals, Interval};
use serde::{Deserialize, Serialize};

/// A radio state with a concrete power draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RadioState {
    /// Promoting from idle to connected.
    Promoting,
    /// Actively transferring (DCH / LTE CR).
    Active,
    /// Lingering in an inactivity tail phase (0-based index).
    Tail(usize),
    /// Idle.
    Idle,
}

/// One segment of the timeline: a state held over a span, with
/// fractional-second boundaries (promotions may be sub-second on LTE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start time (seconds, fractional).
    pub start: f64,
    /// End time (seconds, fractional).
    pub end: f64,
    /// The state held.
    pub state: RadioState,
    /// Power draw in milliwatts.
    pub mw: f64,
}

impl Segment {
    /// Segment duration in seconds.
    pub fn secs(&self) -> f64 {
        self.end - self.start
    }

    /// Energy of the segment in joules.
    pub fn joules(&self) -> f64 {
        self.secs() * self.mw / 1_000.0
    }
}

/// The full state sequence for a transfer set under a model.
///
/// ```
/// use netmaster_radio::{Interval, RrcModel, Timeline};
///
/// let model = RrcModel::wcdma_default();
/// let t = Timeline::build(&model, &[Interval::new(100, 110)]);
/// // Promotion, 10 s active, 17 s of WCDMA tails = 29 s radio-on.
/// assert_eq!(t.wakeups(), 1);
/// assert!((t.radio_on_secs() - 29.0).abs() < 1e-9);
/// // Energy matches the integral accountant exactly.
/// assert!((t.total_j() - model.account(&[Interval::new(100, 110)]).total_j()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Non-idle segments, ascending, non-overlapping. Idle gaps are
    /// implicit.
    pub segments: Vec<Segment>,
}

impl Timeline {
    /// Builds the timeline for (possibly unsorted/overlapping)
    /// transfers. Promotion precedes each cold burst; tails follow the
    /// last transfer of a burst and truncate when a new transfer
    /// arrives mid-tail.
    pub fn build(model: &RrcModel, transfers: &[Interval]) -> Timeline {
        let cfg = &model.config;
        let tail_len = model.tail_secs();
        let merged = merge_intervals(transfers.to_vec());
        let mut segments = Vec::new();

        let tail_phases: Vec<TailPhase> = {
            // Clip the configured phases to the policy-effective length.
            let mut remaining = tail_len;
            let mut v = Vec::new();
            for p in &cfg.tail_phases {
                if remaining <= 0.0 {
                    break;
                }
                let take = p.secs.min(remaining);
                v.push(TailPhase {
                    secs: take,
                    mw: p.mw,
                });
                remaining -= take;
            }
            v
        };

        let mut tail_until: Option<f64> = None;
        for (i, span) in merged.iter().enumerate() {
            let (s, e) = (span.start as f64, span.end as f64);
            match tail_until {
                Some(t_end) if s <= t_end => {
                    // Truncated tail: emit only the elapsed portion.
                    let prev_end = t_end - tail_len;
                    let mut t = prev_end;
                    for (pi, p) in tail_phases.iter().enumerate() {
                        let seg_end = (t + p.secs).min(s);
                        if seg_end > t {
                            segments.push(Segment {
                                start: t,
                                end: seg_end,
                                state: RadioState::Tail(pi),
                                mw: p.mw,
                            });
                        }
                        t += p.secs;
                        if t >= s {
                            break;
                        }
                    }
                }
                _ => {
                    // Close out the previous tail fully.
                    if let Some(t_end) = tail_until {
                        let mut t = t_end - tail_len;
                        for (pi, p) in tail_phases.iter().enumerate() {
                            segments.push(Segment {
                                start: t,
                                end: t + p.secs,
                                state: RadioState::Tail(pi),
                                mw: p.mw,
                            });
                            t += p.secs;
                        }
                    }
                    // Promote ahead of the transfer.
                    if cfg.promo_secs > 0.0 {
                        segments.push(Segment {
                            start: s - cfg.promo_secs,
                            end: s,
                            state: RadioState::Promoting,
                            mw: cfg.promo_mw,
                        });
                    }
                }
            }
            segments.push(Segment {
                start: s,
                end: e,
                state: RadioState::Active,
                mw: cfg.active_mw,
            });
            let _ = i;
            tail_until = Some(e + tail_len);
        }
        if let Some(t_end) = tail_until {
            let mut t = t_end - tail_len;
            for (pi, p) in tail_phases.iter().enumerate() {
                segments.push(Segment {
                    start: t,
                    end: t + p.secs,
                    state: RadioState::Tail(pi),
                    mw: p.mw,
                });
                t += p.secs;
            }
        }
        segments.retain(|s| s.secs() > 1e-9);
        Timeline { segments }
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.segments.iter().map(Segment::joules).sum()
    }

    /// Total non-idle seconds.
    pub fn radio_on_secs(&self) -> f64 {
        self.segments.iter().map(Segment::secs).sum()
    }

    /// Number of promotions (radio wake-ups).
    pub fn wakeups(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.state == RadioState::Promoting)
            .count() as u64
    }

    /// Renders an ASCII strip chart: one character per `secs_per_char`
    /// seconds over `window` (P=promoting, #=active, t=tail, ·=idle).
    pub fn ascii(&self, window: Interval, secs_per_char: u64) -> String {
        let cells = (window.len() / secs_per_char.max(1)) as usize;
        let mut chars = vec!['·'; cells];
        for seg in &self.segments {
            let c = match seg.state {
                RadioState::Promoting => 'P',
                RadioState::Active => '#',
                RadioState::Tail(_) => 't',
                RadioState::Idle => '·',
            };
            let from = seg.start.max(window.start as f64);
            let to = seg.end.min(window.end as f64);
            if to <= from {
                continue;
            }
            let a = ((from - window.start as f64) / secs_per_char as f64) as usize;
            let b =
                (((to - window.start as f64) / secs_per_char as f64).ceil() as usize).min(cells);
            for cell in chars.iter_mut().take(b).skip(a) {
                // Priority: active > promoting > tail.
                let rank = |ch: char| match ch {
                    '#' => 3,
                    'P' => 2,
                    't' => 1,
                    _ => 0,
                };
                if rank(c) > rank(*cell) {
                    *cell = c;
                }
            }
        }
        chars.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn single_transfer_timeline_shape() {
        let m = RrcModel::wcdma_default();
        let t = Timeline::build(&m, &[iv(100, 110)]);
        let states: Vec<RadioState> = t.segments.iter().map(|s| s.state).collect();
        assert_eq!(
            states,
            vec![
                RadioState::Promoting,
                RadioState::Active,
                RadioState::Tail(0),
                RadioState::Tail(1)
            ]
        );
        assert_eq!(t.wakeups(), 1);
    }

    #[test]
    fn timeline_energy_matches_accountant() {
        let m = RrcModel::wcdma_default();
        for transfers in [
            vec![iv(0, 10)],
            vec![iv(0, 10), iv(15, 25)],             // tail-riding
            vec![iv(0, 10), iv(1_000, 1_005)],       // two cold bursts
            vec![iv(0, 20), iv(10, 30), iv(28, 29)], // overlaps
        ] {
            let b = m.account(&transfers);
            let t = Timeline::build(&m, &transfers);
            assert!(
                (t.total_j() - b.total_j()).abs() < 1e-6,
                "{transfers:?}: {} vs {}",
                t.total_j(),
                b.total_j()
            );
            assert!((t.radio_on_secs() - b.radio_on_secs()).abs() < 1e-6);
            assert_eq!(t.wakeups(), b.wakeups);
        }
    }

    #[test]
    fn immediate_off_has_no_tail_segments() {
        let m = RrcModel::wcdma_immediate_off();
        let t = Timeline::build(&m, &[iv(0, 10)]);
        assert!(t
            .segments
            .iter()
            .all(|s| !matches!(s.state, RadioState::Tail(_))));
        let b = m.account(&[iv(0, 10)]);
        assert!((t.total_j() - b.total_j()).abs() < 1e-9);
    }

    #[test]
    fn truncated_tail_is_partial() {
        let m = RrcModel::wcdma_default();
        // Second transfer 6 s after the first ends: 5 s DCH tail + 1 s
        // of the FACH tail elapse, then re-activation.
        let t = Timeline::build(&m, &[iv(0, 10), iv(16, 20)]);
        let tails: Vec<&Segment> = t
            .segments
            .iter()
            .filter(|s| matches!(s.state, RadioState::Tail(_)))
            .collect();
        // Elapsed: Tail(0) 5 s + Tail(1) 1 s; trailing: Tail(0) 5 s + Tail(1) 12 s.
        assert_eq!(tails.len(), 4);
        assert!((tails[0].secs() - 5.0).abs() < 1e-9);
        assert!((tails[1].secs() - 1.0).abs() < 1e-9);
        assert_eq!(t.wakeups(), 1);
    }

    #[test]
    fn ascii_strip_renders_states() {
        let m = RrcModel::wcdma_default();
        let t = Timeline::build(&m, &[iv(10, 20)]);
        let strip = t.ascii(iv(0, 60), 1);
        assert_eq!(strip.chars().count(), 60);
        assert!(strip.contains('#'));
        assert!(strip.contains('P'));
        assert!(strip.contains('t'));
        assert!(strip.contains('·'));
        // Active cells sit where the transfer is ('·' is multibyte, so
        // index by chars).
        let cells: Vec<char> = strip.chars().collect();
        assert!(cells[10..20].iter().all(|&c| c == '#'), "{strip}");
        assert_eq!(cells[8], 'P', "2 s promotion hugs the transfer start");
        assert_eq!(cells[9], 'P');
        assert_eq!(cells[0], '·');
        assert_eq!(cells[25], 't', "tail follows the burst");
    }

    #[test]
    fn lte_timeline_has_single_tail_phase() {
        let m = RrcModel::lte_default();
        let t = Timeline::build(&m, &[iv(0, 5)]);
        let tail_phases: std::collections::HashSet<usize> = t
            .segments
            .iter()
            .filter_map(|s| match s.state {
                RadioState::Tail(i) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(tail_phases.len(), 1);
        let b = m.account(&[iv(0, 5)]);
        assert!((t.total_j() - b.total_j()).abs() < 1e-6);
    }
}
