//! Battery model: joules to battery percentage and battery-life
//! framing. The paper's motivation is battery life ("serious problems
//! with regard to battery life"); this converts the simulator's joule
//! counts into the units a user sees.

use serde::{Deserialize, Serialize};

/// A phone battery.
///
/// ```
/// use netmaster_radio::BatteryModel;
///
/// let b = BatteryModel::htc_one_x();
/// // 1 800 J/day of network energy on a 2013 battery:
/// assert!((b.percent_per_day(1_800.0) - 7.31).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryModel {
    /// Capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal voltage.
    pub voltage: f64,
}

impl BatteryModel {
    /// A 2013-era handset battery (the HTC One X ships 1800 mAh @ 3.8 V).
    pub fn htc_one_x() -> Self {
        BatteryModel {
            capacity_mah: 1_800.0,
            voltage: 3.8,
        }
    }

    /// Total energy content in joules.
    pub fn capacity_j(&self) -> f64 {
        // mAh → C: ×3.6; C × V → J.
        self.capacity_mah * 3.6 * self.voltage
    }

    /// Fraction of a full battery that `joules` drains.
    pub fn drain_fraction(&self, joules: f64) -> f64 {
        joules / self.capacity_j()
    }

    /// Battery percentage points per day for a given daily energy.
    pub fn percent_per_day(&self, joules_per_day: f64) -> f64 {
        100.0 * self.drain_fraction(joules_per_day)
    }

    /// Days one full charge lasts if `joules_per_day` were the only
    /// consumer (the network-activity share of standby life).
    pub fn days_per_charge(&self, joules_per_day: f64) -> f64 {
        if joules_per_day <= 0.0 {
            return f64::INFINITY;
        }
        self.capacity_j() / joules_per_day
    }

    /// How many extra battery-percentage points per day a saving of
    /// `saved_joules_per_day` buys.
    pub fn percent_saved_per_day(&self, saved_joules_per_day: f64) -> f64 {
        self.percent_per_day(saved_joules_per_day)
    }

    /// Sanity check.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_mah <= 0.0 || self.voltage <= 0.0 {
            return Err("battery capacity and voltage must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_in_joules() {
        let b = BatteryModel::htc_one_x();
        assert_eq!(b.validate(), Ok(()));
        // 1800 mAh × 3.6 × 3.8 V = 24 624 J.
        assert!((b.capacity_j() - 24_624.0).abs() < 1e-9);
    }

    #[test]
    fn drain_fraction_and_percent() {
        let b = BatteryModel::htc_one_x();
        let quarter = b.capacity_j() / 4.0;
        assert!((b.drain_fraction(quarter) - 0.25).abs() < 1e-12);
        assert!((b.percent_per_day(quarter) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn days_per_charge() {
        let b = BatteryModel::htc_one_x();
        assert!((b.days_per_charge(b.capacity_j()) - 1.0).abs() < 1e-12);
        assert_eq!(b.days_per_charge(0.0), f64::INFINITY);
    }

    #[test]
    fn paper_scale_savings_are_meaningful() {
        // Our volunteers' network stack burns ~1 800 J/day stock and
        // NetMaster saves ~1 100 J/day: that is ≈4.5 battery points per
        // day on a 2013 battery — the "energy devourer" of the title.
        let b = BatteryModel::htc_one_x();
        let stock_network = 1_800.0;
        let saved = 1_100.0;
        assert!(b.percent_per_day(stock_network) > 5.0);
        assert!((4.0..6.0).contains(&b.percent_saved_per_day(saved)));
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(BatteryModel {
            capacity_mah: 0.0,
            voltage: 3.8
        }
        .validate()
        .is_err());
        assert!(BatteryModel {
            capacity_mah: 1000.0,
            voltage: -1.0
        }
        .validate()
        .is_err());
    }
}
