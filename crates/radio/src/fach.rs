//! Size-aware WCDMA accounting: CELL_FACH for small transfers.
//!
//! The real 3G RRC machine does not promote straight to DCH for every
//! byte — transfers whose burst fits the FACH uplink/downlink buffers
//! (a few hundred bytes) are served in CELL_FACH at roughly half the
//! power, with a cheaper IDLE→FACH promotion (Qian et al. [10] measure
//! both paths). The baseline [`RrcModel`](crate::RrcModel) charges DCH
//! for everything, which slightly *overstates* the stock device's cost
//! on keepalive-heavy workloads; this module quantifies the difference
//! so EXPERIMENTS.md can bound the modelling error.

use crate::power::RrcConfig;
use crate::rrc::EnergyBreakdown;
use netmaster_trace::time::Interval;
use serde::{Deserialize, Serialize};

/// FACH-path parameters (Qian et al. WCDMA measurements).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FachConfig {
    /// Bursts at or below this many bytes stay in CELL_FACH.
    pub threshold_bytes: u64,
    /// CELL_FACH power (≈460 mW).
    pub fach_mw: f64,
    /// IDLE→FACH promotion latency (≈1.5 s, vs 2 s to DCH).
    pub promo_secs: f64,
    /// Power during the IDLE→FACH promotion.
    pub promo_mw: f64,
    /// FACH→IDLE inactivity timer (the FACH-only tail, ≈12 s).
    pub tail_secs: f64,
}

impl Default for FachConfig {
    fn default() -> Self {
        FachConfig {
            threshold_bytes: 512,
            fach_mw: 460.0,
            promo_secs: 1.5,
            promo_mw: 460.0,
            tail_secs: 12.0,
        }
    }
}

/// A WCDMA accountant that routes small bursts through CELL_FACH.
///
/// ```
/// use netmaster_radio::{Interval, SizeAwareRrc};
///
/// let m = SizeAwareRrc::wcdma();
/// // A 300-byte keepalive stays in FACH (≈0.46 W throughout)…
/// let small = m.account_sized(&[(Interval::new(0, 2), 300)]);
/// // …while a 50 kB fetch promotes to DCH and pays the full tails.
/// let large = m.account_sized(&[(Interval::new(0, 2), 50_000)]);
/// assert!(small.total_j() < 0.6 * large.total_j());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeAwareRrc {
    /// DCH-path parameters (the standard model).
    pub dch: RrcConfig,
    /// FACH-path parameters.
    pub fach: FachConfig,
}

impl SizeAwareRrc {
    /// WCDMA with published constants on both paths.
    pub fn wcdma() -> Self {
        SizeAwareRrc {
            dch: RrcConfig::wcdma(),
            fach: FachConfig::default(),
        }
    }

    /// Accounts a timeline of `(span, bytes)` transfers.
    ///
    /// Bursts are formed by merging overlapping/adjacent spans; a burst
    /// whose *total* bytes fit the FACH buffer runs entirely in FACH
    /// (cheaper promotion, FACH power, FACH tail); anything larger
    /// promotes to DCH and pays the standard costs. Tail-riding works
    /// per-path: a transfer arriving inside a previous burst's tail
    /// skips its promotion.
    pub fn account_sized(&self, transfers: &[(Interval, u64)]) -> EnergyBreakdown {
        let mut sorted: Vec<(Interval, u64)> = transfers.to_vec();
        sorted.sort_by_key(|(s, _)| (s.start, s.end));
        // Merge into bursts, accumulating bytes.
        let mut bursts: Vec<(Interval, u64)> = Vec::new();
        for (span, bytes) in sorted {
            match bursts.last_mut() {
                Some((last, b)) if span.start <= last.end => {
                    last.end = last.end.max(span.end);
                    *b += bytes;
                }
                _ => bursts.push((span, bytes)),
            }
        }

        let mut out = EnergyBreakdown::default();
        let mut tail_until: Option<f64> = None;
        let mut last_tail_len = 0.0f64;
        let mut last_tail_mw = 0.0f64;
        for (span, bytes) in &bursts {
            let small = *bytes <= self.fach.threshold_bytes;
            let (active_mw, promo_secs, promo_mw, tail_len, tail_mw) = if small {
                (
                    self.fach.fach_mw,
                    self.fach.promo_secs,
                    self.fach.promo_mw,
                    self.fach.tail_secs,
                    self.fach.fach_mw,
                )
            } else {
                // DCH path: approximate the two-phase tail with its
                // energy-equivalent mean power so the breakdown stays
                // one-dimensional.
                let t = self.dch.tail_secs();
                let mw = if t > 0.0 {
                    1_000.0 * self.dch.tail_energy_j() / t
                } else {
                    0.0
                };
                (
                    self.dch.active_mw,
                    self.dch.promo_secs,
                    self.dch.promo_mw,
                    t,
                    mw,
                )
            };
            let (s, e) = (span.start as f64, span.end as f64);
            match tail_until {
                Some(t_end) if s <= t_end => {
                    // Riding the previous burst's tail: pay the elapsed
                    // portion at the previous tail's power.
                    let prev_active_end = t_end - last_tail_len;
                    let elapsed = (s - prev_active_end).max(0.0);
                    out.tail_secs += elapsed;
                    out.tail_j += elapsed * last_tail_mw / 1_000.0;
                }
                _ => {
                    if tail_until.is_some() {
                        out.tail_secs += last_tail_len;
                        out.tail_j += last_tail_len * last_tail_mw / 1_000.0;
                    }
                    out.wakeups += 1;
                    out.promo_secs += promo_secs;
                    out.promo_j += promo_secs * promo_mw / 1_000.0;
                }
            }
            out.active_secs += e - s;
            out.active_j += (e - s) * active_mw / 1_000.0;
            tail_until = Some(e + tail_len);
            last_tail_len = tail_len;
            last_tail_mw = tail_mw;
        }
        if tail_until.is_some() {
            out.tail_secs += last_tail_len;
            out.tail_j += last_tail_len * last_tail_mw / 1_000.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrc::RrcModel;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn small_burst_runs_in_fach() {
        let m = SizeAwareRrc::wcdma();
        let b = m.account_sized(&[(iv(0, 3), 400)]);
        // FACH path: 1.5 s × 0.46 + 3 s × 0.46 + 12 s × 0.46.
        let expected = (1.5 + 3.0 + 12.0) * 0.46;
        assert!((b.total_j() - expected).abs() < 1e-9, "{}", b.total_j());
        assert_eq!(b.wakeups, 1);
    }

    #[test]
    fn large_burst_runs_in_dch() {
        let m = SizeAwareRrc::wcdma();
        let sized = m.account_sized(&[(iv(0, 10), 50_000)]);
        let plain = RrcModel::wcdma_default().account(&[iv(0, 10)]);
        assert!((sized.total_j() - plain.total_j()).abs() < 1e-9);
        assert!((sized.radio_on_secs() - plain.radio_on_secs()).abs() < 1e-9);
    }

    #[test]
    fn fach_path_is_cheaper_for_keepalives() {
        let m = SizeAwareRrc::wcdma();
        let keepalives: Vec<(Interval, u64)> =
            (0..10).map(|i| (iv(i * 600, i * 600 + 2), 300)).collect();
        let sized = m.account_sized(&keepalives);
        let spans: Vec<Interval> = keepalives.iter().map(|&(s, _)| s).collect();
        let dch_only = RrcModel::wcdma_default().account(&spans);
        assert!(
            sized.total_j() < 0.7 * dch_only.total_j(),
            "FACH keepalives: {} vs DCH {}",
            sized.total_j(),
            dch_only.total_j()
        );
    }

    #[test]
    fn merged_bursts_pool_their_bytes() {
        let m = SizeAwareRrc::wcdma();
        // Two 300 B transfers overlapping: pooled 600 B > 512 ⇒ DCH.
        let b = m.account_sized(&[(iv(0, 3), 300), (iv(2, 5), 300)]);
        assert!(
            (b.active_j - 5.0 * 0.8).abs() < 1e-9,
            "DCH active power applies"
        );
    }

    #[test]
    fn tail_riding_skips_promotion_across_paths() {
        let m = SizeAwareRrc::wcdma();
        // Small burst, then a large one 5 s later (inside the 12 s FACH tail).
        let b = m.account_sized(&[(iv(0, 2), 300), (iv(7, 17), 40_000)]);
        assert_eq!(b.wakeups, 1, "second burst rides the FACH tail");
        // Elapsed tail (5 s) charged at FACH power.
        assert!(b.tail_j > 0.0);
    }

    #[test]
    fn dch_overstatement_is_bounded() {
        // How much does the all-DCH baseline overstate a mixed workload?
        use netmaster_trace::gen::generate_volunteers;
        let trace = generate_volunteers(7, 5).remove(0);
        let m = SizeAwareRrc::wcdma();
        let sized_input: Vec<(Interval, u64)> = trace
            .all_activities()
            .map(|a| (a.span(), a.volume()))
            .collect();
        let spans: Vec<Interval> = sized_input.iter().map(|&(s, _)| s).collect();
        let sized = m.account_sized(&sized_input);
        let plain = RrcModel::wcdma_default().account(&spans);
        let ratio = sized.total_j() / plain.total_j();
        // Most bursts exceed 512 B, so the correction is small.
        assert!(
            (0.75..=1.0).contains(&ratio),
            "size-aware / all-DCH energy ratio {ratio:.3}"
        );
    }

    #[test]
    fn empty_input_is_free() {
        let b = SizeAwareRrc::wcdma().account_sized(&[]);
        assert_eq!(b.total_j(), 0.0);
        assert_eq!(b.wakeups, 0);
    }
}
