//! RRC state-machine energy accounting over transfer timelines.
//!
//! Given the set of intervals during which the radio is actively moving
//! bytes, [`RrcModel::account`] replays the state machine — promotion,
//! active, tail phases, idle — and returns where the time and joules
//! went. This is the paper's `g` function generalized from a single
//! activity to a whole timeline (overlapping transfers share radio-on
//! time; back-to-back transfers ride each other's tails).

use crate::power::{RrcConfig, TailPolicy};
use netmaster_trace::time::{merge_intervals, Interval};
use serde::{Deserialize, Serialize};

/// Where the radio's time and energy went over a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Number of IDLE→active promotions (radio wake-ups).
    pub wakeups: u64,
    /// Seconds spent promoting.
    pub promo_secs: f64,
    /// Seconds actively transferring.
    pub active_secs: f64,
    /// Seconds lingering in tail states.
    pub tail_secs: f64,
    /// Energy spent promoting (J).
    pub promo_j: f64,
    /// Energy spent transferring (J).
    pub active_j: f64,
    /// Energy spent in tails (J).
    pub tail_j: f64,
}

impl EnergyBreakdown {
    /// Total radio-on seconds (promotion + active + tail).
    pub fn radio_on_secs(&self) -> f64 {
        self.promo_secs + self.active_secs + self.tail_secs
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.promo_j + self.active_j + self.tail_j
    }

    /// Energy that bought no bytes: promotion + tail overhead.
    pub fn overhead_j(&self) -> f64 {
        self.promo_j + self.tail_j
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.wakeups += other.wakeups;
        self.promo_secs += other.promo_secs;
        self.active_secs += other.active_secs;
        self.tail_secs += other.tail_secs;
        self.promo_j += other.promo_j;
        self.active_j += other.active_j;
        self.tail_j += other.tail_j;
    }
}

/// An RRC power model bound to a tail policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrcModel {
    /// Technology parameters.
    pub config: RrcConfig,
    /// Tail-cutting behaviour.
    pub tail_policy: TailPolicy,
}

impl RrcModel {
    /// Stock 3G device: WCDMA with full inactivity timers.
    pub fn wcdma_default() -> Self {
        RrcModel {
            config: RrcConfig::wcdma(),
            tail_policy: TailPolicy::Full,
        }
    }

    /// WCDMA with the radio forced off after each transfer, as
    /// NetMaster's scheduling component does via `svc data disable`.
    pub fn wcdma_immediate_off() -> Self {
        RrcModel {
            config: RrcConfig::wcdma(),
            tail_policy: TailPolicy::Immediate,
        }
    }

    /// Stock LTE device.
    pub fn lte_default() -> Self {
        RrcModel {
            config: RrcConfig::lte(),
            tail_policy: TailPolicy::Full,
        }
    }

    /// Effective tail length under the bound policy.
    pub fn tail_secs(&self) -> f64 {
        self.tail_policy.tail_secs(&self.config)
    }

    /// Accounts energy and radio-on time for a transfer timeline.
    ///
    /// `transfers` need not be sorted or disjoint; they are merged
    /// first. A transfer arriving while a previous tail is still
    /// running re-activates the radio without a promotion (the radio
    /// is still in a connected state) and the tail is truncated.
    pub fn account(&self, transfers: &[Interval]) -> EnergyBreakdown {
        let cfg = &self.config;
        let tail_len = self.tail_secs();
        let merged = merge_intervals(transfers.to_vec());
        let mut out = EnergyBreakdown::default();

        let mut tail_until: Option<f64> = None; // end of the running tail
        for span in &merged {
            let (s, e) = (span.start as f64, span.end as f64);
            match tail_until {
                Some(t_end) if s <= t_end => {
                    // Arrived inside the previous tail: pay only the
                    // portion of tail actually elapsed before `s`.
                    let prev_active_end = t_end - tail_len;
                    let elapsed = (s - prev_active_end).max(0.0);
                    out.tail_secs += elapsed;
                    out.tail_j += cfg.tail_prefix_energy_j(elapsed);
                }
                _ => {
                    // Fresh wake-up: close out the previous tail fully,
                    // then promote.
                    if tail_until.is_some() {
                        out.tail_secs += tail_len;
                        out.tail_j += self.tail_policy.tail_energy_j(cfg);
                    }
                    out.wakeups += 1;
                    out.promo_secs += cfg.promo_secs;
                    out.promo_j += cfg.promo_energy_j();
                }
            }
            out.active_secs += e - s;
            out.active_j += cfg.active_energy_j(e - s);
            tail_until = Some(e + tail_len);
        }
        if tail_until.is_some() {
            out.tail_secs += tail_len;
            out.tail_j += self.tail_policy.tail_energy_j(cfg);
        }
        out
    }

    /// The merged intervals during which the radio is in a non-idle
    /// RRC state for the given transfer timeline: promotion before each
    /// burst, the transfers themselves, and the (policy-truncated) tail
    /// after. This is what "radio-on" means when the paper measures the
    /// *radio utilization ratio* of Fig. 2 — tails count.
    pub fn radio_on_spans(&self, transfers: &[Interval]) -> Vec<Interval> {
        let promo = self.config.promo_secs.ceil() as u64;
        let tail = self.tail_secs().ceil() as u64;
        let widened: Vec<Interval> = merge_intervals(transfers.to_vec())
            .into_iter()
            .map(|s| Interval::new(s.start.saturating_sub(promo), s.end + tail))
            .collect();
        merge_intervals(widened)
    }

    /// Energy of a single activity executed in isolation — the paper's
    /// `g(t_j)`, the saving available by *eliminating* a lone screen-off
    /// activity (promotion + transfer + full tail).
    pub fn isolated_energy_j(&self, duration_secs: f64) -> f64 {
        self.config.promo_energy_j()
            + self.config.active_energy_j(duration_secs.max(0.0))
            + self.tail_policy.tail_energy_j(&self.config)
    }

    /// Marginal energy of adding `duration_secs` of transfer to an
    /// already-active radio (piggybacking a scheduled activity onto a
    /// user-active slot): active power only, no promotion, no new tail.
    pub fn piggyback_energy_j(&self, duration_secs: f64) -> f64 {
        self.config.active_energy_j(duration_secs.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn empty_timeline_is_free() {
        let m = RrcModel::wcdma_default();
        let b = m.account(&[]);
        assert_eq!(b.wakeups, 0);
        assert_eq!(b.total_j(), 0.0);
        assert_eq!(b.radio_on_secs(), 0.0);
    }

    #[test]
    fn single_transfer_pays_promo_active_tail() {
        let m = RrcModel::wcdma_default();
        let b = m.account(&[iv(100, 110)]);
        assert_eq!(b.wakeups, 1);
        assert!((b.promo_j - 1.1).abs() < 1e-9);
        assert!((b.active_j - 8.0).abs() < 1e-9);
        assert!((b.tail_j - 9.52).abs() < 1e-9);
        assert!((b.radio_on_secs() - (2.0 + 10.0 + 17.0)).abs() < 1e-9);
        // Matches the isolated-energy helper.
        assert!((b.total_j() - m.isolated_energy_j(10.0)).abs() < 1e-9);
    }

    #[test]
    fn back_to_back_transfers_share_one_tail() {
        let m = RrcModel::wcdma_default();
        // Second transfer starts 5 s after the first ends — inside the tail.
        let b = m.account(&[iv(0, 10), iv(15, 25)]);
        assert_eq!(b.wakeups, 1, "no second promotion inside the tail");
        // Tail: 5 s elapsed between transfers + one full trailing tail.
        assert!((b.tail_secs - (5.0 + 17.0)).abs() < 1e-9);
        // 5 s of elapsed tail is all DCH-tail: 5 × 0.8 = 4.0 J.
        assert!((b.tail_j - (4.0 + 9.52)).abs() < 1e-9);
        assert!((b.active_secs - 20.0).abs() < 1e-9);
    }

    #[test]
    fn distant_transfers_pay_two_promotions() {
        let m = RrcModel::wcdma_default();
        let b = m.account(&[iv(0, 10), iv(1000, 1010)]);
        assert_eq!(b.wakeups, 2);
        assert!((b.promo_j - 2.2).abs() < 1e-9);
        assert!((b.tail_j - 2.0 * 9.52).abs() < 1e-9);
    }

    #[test]
    fn two_isolated_cost_more_than_batched() {
        let m = RrcModel::wcdma_default();
        let separate = m.account(&[iv(0, 10), iv(500, 510)]);
        let batched = m.account(&[iv(0, 10), iv(10, 20)]);
        assert!(batched.total_j() < separate.total_j());
        assert!((separate.total_j() - 2.0 * m.isolated_energy_j(10.0)).abs() < 1e-9);
    }

    #[test]
    fn overlapping_transfers_merge() {
        let m = RrcModel::wcdma_default();
        let overlapped = m.account(&[iv(0, 20), iv(10, 30)]);
        let single = m.account(&[iv(0, 30)]);
        assert_eq!(overlapped, single);
    }

    #[test]
    fn immediate_off_kills_tail() {
        let m = RrcModel::wcdma_immediate_off();
        let b = m.account(&[iv(0, 10)]);
        assert_eq!(b.tail_j, 0.0);
        assert_eq!(b.tail_secs, 0.0);
        assert!((b.radio_on_secs() - 12.0).abs() < 1e-9);
        // With no tail, a transfer 5 s later is a *new* wakeup.
        let b2 = m.account(&[iv(0, 10), iv(15, 25)]);
        assert_eq!(b2.wakeups, 2);
    }

    #[test]
    fn fast_dormancy_truncates_tail() {
        let m = RrcModel {
            config: RrcConfig::wcdma(),
            tail_policy: TailPolicy::FastDormancy(3.0),
        };
        let b = m.account(&[iv(0, 10)]);
        assert!((b.tail_secs - 3.0).abs() < 1e-9);
        assert!((b.tail_j - 2.4).abs() < 1e-9); // 3 s of DCH tail
    }

    #[test]
    fn lte_single_transfer() {
        let m = RrcModel::lte_default();
        let b = m.account(&[iv(0, 10)]);
        assert_eq!(b.wakeups, 1);
        assert!((b.total_j() - (0.26 * 1.21 + 10.0 * 1.21 + 11.6 * 1.06)).abs() < 1e-6);
    }

    #[test]
    fn breakdown_accumulates() {
        let m = RrcModel::wcdma_default();
        let mut acc = EnergyBreakdown::default();
        acc.add(&m.account(&[iv(0, 10)]));
        acc.add(&m.account(&[iv(0, 10)]));
        let single = m.account(&[iv(0, 10)]);
        assert_eq!(acc.wakeups, 2);
        assert!((acc.total_j() - 2.0 * single.total_j()).abs() < 1e-9);
        assert!((acc.overhead_j() - 2.0 * single.overhead_j()).abs() < 1e-9);
    }

    #[test]
    fn piggyback_is_cheapest() {
        let m = RrcModel::wcdma_default();
        assert!(m.piggyback_energy_j(10.0) < m.isolated_energy_j(10.0));
        assert!((m.piggyback_energy_j(10.0) - 8.0).abs() < 1e-9);
        assert_eq!(m.piggyback_energy_j(-3.0), 0.0);
    }

    #[test]
    fn radio_on_spans_cover_promo_and_tail() {
        let m = RrcModel::wcdma_default();
        let spans = m.radio_on_spans(&[iv(100, 110)]);
        assert_eq!(spans, vec![iv(98, 127)]); // 2 s promo + 17 s tail
                                              // Two bursts whose widened spans touch merge into one.
        let spans = m.radio_on_spans(&[iv(100, 110), iv(120, 130)]);
        assert_eq!(spans, vec![iv(98, 147)]);
        // Immediate-off policy drops the tail.
        let spans = RrcModel::wcdma_immediate_off().radio_on_spans(&[iv(100, 110)]);
        assert_eq!(spans, vec![iv(98, 110)]);
        // Total span time matches the energy accountant's radio-on time
        // for an isolated transfer.
        let b = m.account(&[iv(100, 110)]);
        assert!((b.radio_on_secs() - 29.0).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let m = RrcModel::wcdma_default();
        let a = m.account(&[iv(1000, 1010), iv(0, 10)]);
        let b = m.account(&[iv(0, 10), iv(1000, 1010)]);
        assert_eq!(a, b);
    }
}
