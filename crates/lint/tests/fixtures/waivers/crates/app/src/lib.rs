pub fn timed() -> (std::time::Instant, std::time::Instant) {
    // lint:allow(determinism) fixture exercises a reasoned waiver
    let a = std::time::Instant::now();
    // lint:allow(determinism)
    let b = std::time::Instant::now();
    (a, b)
}
