//! Deliberate lock-order inversion: `a_then_b` takes A then B while
//! `b_then_a` takes B and reaches A through a call edge.

use std::sync::Mutex;

pub static A: Mutex<u32> = Mutex::new(0);
pub static B: Mutex<u32> = Mutex::new(0);

pub fn a_then_b() -> u32 {
    let ga = A.lock().unwrap();
    let gb = B.lock().unwrap();
    *ga + *gb
}

pub fn b_then_a() -> u32 {
    let gb = B.lock().unwrap();
    *gb + read_a()
}

fn read_a() -> u32 {
    let ga = A.lock().unwrap();
    *ga
}
