pub const DEMO_TOTAL: &str = "demo_total";

pub const HELP: &[(&str, &str)] = &[(DEMO_TOTAL, "Covered by the HELP table")];
