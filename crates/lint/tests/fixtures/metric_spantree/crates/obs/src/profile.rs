/// A profiler that mints its sample counter name inline — flagged too.
pub fn rogue_sample_counter() -> &'static str {
    "rogue_profile_samples_seconds"
}
