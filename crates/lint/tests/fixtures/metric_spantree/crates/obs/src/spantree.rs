/// A span-tree store that hand-rolls its drop counter name instead of
/// going through the registry — the plane check must flag the literal.
pub fn rogue_drop_counter() -> &'static str {
    "rogue_spans_dropped_total"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_literals_are_exempt() {
        // Metric-shaped strings inside tests are fine.
        assert!(!"test_only_span_total".is_empty());
    }
}
