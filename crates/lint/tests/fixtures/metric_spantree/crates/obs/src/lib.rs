mod profile;
mod registry_names;
mod spantree;
