/// The fixture's one registered metric.
pub const DEMO_TOTAL: &str = "demo_total";
