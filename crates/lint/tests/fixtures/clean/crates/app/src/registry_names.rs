/// The fixture's one registered metric.
pub const DEMO_TOTAL: &str = "demo_total";

/// `# HELP` text for every metric const above.
pub const HELP: &[(&str, &str)] = &[(DEMO_TOTAL, "The fixture's one registered metric")];
