//! Clean fixture: every rule passes.

mod registry_names;

// lint:hot-path
pub fn hot_sum(xs: &[u64]) -> u64 {
    let mut acc = 0;
    for x in xs {
        acc += x;
    }
    acc
}
