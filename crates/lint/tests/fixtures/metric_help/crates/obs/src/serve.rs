/// A scrape route that hand-rolls a metric name instead of going
/// through the registry — the lint must flag the literal.
pub fn rogue_metric_line() -> &'static str {
    "bogus_requests_total"
}
