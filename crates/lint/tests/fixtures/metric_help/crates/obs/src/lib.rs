mod registry_names;
mod serve;
