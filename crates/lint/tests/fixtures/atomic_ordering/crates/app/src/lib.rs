//! Deliberate Relaxed publish: PAYLOAD is written, then "published"
//! through a Relaxed store with no release edge; the Relaxed load on
//! the other side completes the broken pair.

use std::sync::atomic::{AtomicBool, Ordering};

pub static READY: AtomicBool = AtomicBool::new(false);
pub static mut PAYLOAD: u64 = 0;

pub fn publish(v: u64) {
    unsafe { PAYLOAD = v };
    READY.store(true, Ordering::Relaxed);
}

pub fn consume() -> Option<u64> {
    if READY.load(Ordering::Relaxed) {
        return Some(unsafe { PAYLOAD });
    }
    None
}
