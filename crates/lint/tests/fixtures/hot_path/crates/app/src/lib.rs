// lint:hot-path
pub fn hot_collect(xs: &[u64]) -> Vec<u64> {
    xs.iter().map(|x| x + 1).collect()
}
