pub fn noop() {}
