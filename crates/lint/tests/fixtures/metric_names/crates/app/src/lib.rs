mod registry_names;

pub fn record() {
    counter!("rogue_total");
}
