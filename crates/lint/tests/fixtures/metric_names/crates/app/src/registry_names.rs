pub const DEMO_TOTAL: &str = "demo_total";
