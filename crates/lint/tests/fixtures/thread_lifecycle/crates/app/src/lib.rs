//! Deliberate thread leaks: one spawn discards its handle outright,
//! the other keeps it but no join exists anywhere in the crate.

use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| {});
}

pub fn bound_but_never_joined() {
    let worker = thread::spawn(|| {});
    let _ = worker.thread().id();
}
