/// A history-store module that mints a series name instead of going
/// through the registry — the plane check must flag the literal.
pub fn rogue_series_name() -> &'static str {
    "rogue_store_points_total"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_literals_are_exempt() {
        // Metric-shaped strings inside tests are fine.
        assert!(!"test_only_store_total".is_empty());
    }
}
