/// An alert engine that hand-rolls its gauge name — flagged too.
pub fn rogue_gauge_name() -> &'static str {
    "rogue_alerts_firing_seconds"
}
