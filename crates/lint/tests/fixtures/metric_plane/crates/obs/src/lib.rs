mod alerts;
mod registry_names;
mod store;
