//! Deliberate transitive hot-path allocation: the marked entry is
//! alloc-free but reaches a `collect()` two calls down.

// lint:hot-path
pub fn hot_entry(acc: &mut [u64; 4]) {
    stage_one(acc);
}

fn stage_one(acc: &mut [u64; 4]) {
    stage_two(acc);
}

fn stage_two(acc: &mut [u64; 4]) {
    let spill: Vec<u64> = acc.iter().copied().collect();
    acc[0] = spill.len() as u64;
}
