//! Deliberate guard-across-I/O: the journal mutex is held over a
//! socket write, stalling every producer behind a slow scraper.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub static JOURNAL: Mutex<Vec<u8>> = Mutex::new(Vec::new());

pub fn flush_journal(stream: &mut TcpStream) -> std::io::Result<()> {
    let g = JOURNAL.lock().unwrap();
    stream.write_all(&g)?;
    Ok(())
}
