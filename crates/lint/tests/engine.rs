//! End-to-end engine tests: each violation fixture under
//! `tests/fixtures/` is a miniature workspace that must trip exactly
//! its target rule; the clean fixture must pass every rule.

use netmaster_lint::{run_lint, Level, LintConfig, RULE_IDS};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A config where only `rule` runs, so fixtures are judged in
/// isolation from one another's deliberate violations.
fn only(rule: &str) -> LintConfig {
    let mut cfg = LintConfig::default();
    for r in RULE_IDS {
        if r != rule {
            cfg.set_level(r, Level::Allow).unwrap();
        }
    }
    cfg
}

#[test]
fn clean_fixture_passes_every_rule() {
    let report = run_lint(&fixture("clean"), &LintConfig::default()).unwrap();
    assert!(
        report.clean(),
        "clean fixture must have no findings, got: {:?}",
        report.findings
    );
    assert!(report.waived.is_empty());
    assert_eq!(report.files_scanned, 2);
    // Every rule ran (deny-by-default).
    for r in RULE_IDS {
        assert_eq!(report.rule_counts.get(r), Some(&0), "rule {r} must run");
    }
}

#[test]
fn hot_path_fixture_trips_hot_path_alloc() {
    let report = run_lint(&fixture("hot_path"), &only("hot-path-alloc")).unwrap();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "hot-path-alloc");
    assert!(report.findings[0].message.contains("collect"));
    assert!(report.findings[0].message.contains("hot_collect"));
}

#[test]
fn hot_path_transitive_fixture_names_the_call_chain() {
    let report = run_lint(&fixture("hot_path_transitive"), &only("hot-path-alloc")).unwrap();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "hot-path-alloc");
    assert!(report.findings[0].message.contains("collect"));
    assert!(report.findings[0]
        .message
        .contains("hot_entry → stage_one → stage_two"));
    // Switching propagation off reverts to the body-only check: the
    // marked body is clean, so the fixture passes.
    let mut cfg = only("hot-path-alloc");
    cfg.transitive_hot_path = false;
    let report = run_lint(&fixture("hot_path_transitive"), &cfg).unwrap();
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn lock_order_fixture_names_the_cycle() {
    let report = run_lint(&fixture("lock_order"), &only("lock-order")).unwrap();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "lock-order");
    let msg = &report.findings[0].message;
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(
        msg.contains("A → B → A") || msg.contains("B → A → B"),
        "{msg}"
    );
    assert!(msg.contains("read_a"), "the call edge must be named: {msg}");
}

#[test]
fn lock_across_io_fixture_names_guard_and_op() {
    let report = run_lint(&fixture("lock_across_io"), &only("lock-across-io")).unwrap();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "lock-across-io");
    let msg = &report.findings[0].message;
    assert!(msg.contains("write_all"), "{msg}");
    assert!(msg.contains("JOURNAL"), "{msg}");
}

#[test]
fn atomic_ordering_fixture_trips_relaxed_pair() {
    let report = run_lint(&fixture("atomic_ordering"), &only("atomic-ordering")).unwrap();
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.rule == "atomic-ordering"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("store(Ordering::Relaxed)")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("load(Ordering::Relaxed)")));
}

#[test]
fn thread_lifecycle_fixture_trips_discard_and_joinless() {
    let report = run_lint(&fixture("thread_lifecycle"), &only("thread-lifecycle")).unwrap();
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.rule == "thread-lifecycle"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("discarded")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("no `.join()` is reachable")));
}

#[test]
fn feature_gate_fixture_trips_manifest_checks() {
    let report = run_lint(&fixture("feature_gate"), &only("feature-gate")).unwrap();
    // Two manifest findings: missing default-features = false, and the
    // obs feature not forwarding netmaster-obs/enabled.
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.rule == "feature-gate"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("default-features")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("forward")));
}

#[test]
fn metric_names_fixture_trips_unregistered_literal() {
    let report = run_lint(&fixture("metric_names"), &only("metric-names")).unwrap();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "metric-names");
    assert!(report.findings[0].message.contains("rogue_total"));
}

#[test]
fn metric_help_fixture_trips_help_and_plane_checks() {
    let report = run_lint(&fixture("metric_help"), &only("metric-names")).unwrap();
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("ORPHAN_TOTAL") && f.message.contains("no HELP entry")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("bogus_requests_total")));
}

#[test]
fn metric_plane_fixture_trips_store_and_alerts_modules() {
    let report = run_lint(&fixture("metric_plane"), &only("metric-names")).unwrap();
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("obs/src/store.rs")
            && f.message.contains("rogue_store_points_total")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("obs/src/alerts.rs")
            && f.message.contains("rogue_alerts_firing_seconds")));
}

#[test]
fn metric_spantree_fixture_trips_tracing_modules() {
    let report = run_lint(&fixture("metric_spantree"), &only("metric-names")).unwrap();
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("obs/src/spantree.rs")
            && f.message.contains("rogue_spans_dropped_total")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("obs/src/profile.rs")
            && f.message.contains("rogue_profile_samples_seconds")));
}

#[test]
fn panic_hygiene_fixture_trips_unwrap() {
    let report = run_lint(&fixture("panic_hygiene"), &only("panic-hygiene")).unwrap();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "panic-hygiene");
    assert!(report.findings[0].message.contains("unwrap"));
}

#[test]
fn determinism_fixture_trips_wall_clock() {
    let report = run_lint(&fixture("determinism"), &only("determinism")).unwrap();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "determinism");
    assert!(report.findings[0].message.contains("Instant"));
}

#[test]
fn allowing_a_rule_skips_it_entirely() {
    let mut cfg = only("determinism");
    cfg.set_level("determinism", Level::Allow).unwrap();
    let report = run_lint(&fixture("determinism"), &cfg).unwrap();
    assert!(report.clean(), "{:?}", report.findings);
    assert!(
        !report.rule_counts.contains_key("determinism"),
        "an allowed rule must not appear as having run"
    );
}

#[test]
fn waivers_suppress_count_and_demand_reasons() {
    let report = run_lint(&fixture("waivers"), &only("determinism")).unwrap();
    // The reasoned waiver suppresses its finding; the reasonless one is
    // both a waiver-syntax error and powerless against its finding.
    assert_eq!(report.waived.len(), 1, "{:?}", report.waived);
    assert!(report.waived[0]
        .reason
        .contains("fixture exercises a reasoned waiver"));
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "waiver-syntax" && f.message.contains("no reason")));
    assert!(report.findings.iter().any(|f| f.rule == "determinism"));
}

#[test]
fn json_report_is_well_formed() {
    let report = run_lint(&fixture("waivers"), &only("determinism")).unwrap();
    let json = report.render_json();
    // Std-only smoke check of the hand-rendered JSON: parseable shape
    // markers plus the counts the CI gate consumes.
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"waived\""));
    assert!(json.contains("\"findings\""));
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
}
