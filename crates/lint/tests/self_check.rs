//! The linter's strongest test: the real workspace at HEAD must be
//! clean under its own committed configuration. Any rule regression —
//! a new ungated scrape call, an undocumented metric, an allocation in
//! a hot path — fails this test before CI even reaches the lint job.

use netmaster_lint::{run_lint, LintConfig};
use std::path::PathBuf;

#[test]
fn real_workspace_is_lint_clean_at_head() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = run_lint(&root, &cfg).expect("workspace loads");
    assert!(
        report.clean(),
        "workspace must be lint-clean at HEAD; findings:\n{}",
        report.render_text()
    );
    // All five rules ran — the committed config must not quietly
    // disable one.
    assert_eq!(report.rule_counts.len(), 5, "{:?}", report.rule_counts);
    // The waiver budget is explicit: new waivers are a reviewed,
    // deliberate act, not background noise. The solver-engine overhaul
    // added five justified construction-invariant `expect()`s (pool
    // Deref, merge-pick sides, the unbudgeted-search wrapper) plus one
    // amortized once-per-app allocation in the miner's hot path.
    assert!(
        report.waived.len() <= 22,
        "waiver count {} crossed the review threshold — prune or justify",
        report.waived.len()
    );
}
