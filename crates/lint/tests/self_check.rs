//! The linter's strongest test: the real workspace at HEAD must be
//! clean under its own committed configuration. Any rule regression —
//! a new ungated scrape call, an undocumented metric, an allocation in
//! a hot path — fails this test before CI even reaches the lint job.

use netmaster_lint::{run_lint, LintConfig};
use std::path::PathBuf;
use std::time::Instant;

#[test]
fn real_workspace_is_lint_clean_at_head() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("lint.toml parses");
    let t0 = Instant::now();
    let report = run_lint(&root, &cfg).expect("workspace loads");
    let wall = t0.elapsed();
    assert!(
        report.clean(),
        "workspace must be lint-clean at HEAD; findings:\n{}",
        report.render_text()
    );
    // All nine rules ran — the committed config must not quietly
    // disable one.
    assert_eq!(report.rule_counts.len(), 9, "{:?}", report.rule_counts);
    // Every rule reports its cost in the CI artifact.
    assert_eq!(
        report.rule_timings_us.len(),
        9,
        "{:?}",
        report.rule_timings_us
    );
    // The linter must stay cheap enough to run on every push: the
    // call-graph build plus all nine rules complete in well under five
    // seconds on the full workspace (measured ~40ms release, and debug
    // CI builds get two orders of magnitude of headroom).
    assert!(
        wall.as_secs() < 5,
        "full-workspace lint took {wall:?}, budget is 5s"
    );
    // The waiver budget is explicit: new waivers are a reviewed,
    // deliberate act, not background noise. The solver-engine overhaul
    // added five justified construction-invariant `expect()`s (pool
    // Deref, merge-pick sides, the unbudgeted-search wrapper) plus one
    // amortized once-per-app allocation in the miner's hot path. The
    // concurrency-rule audit added fifteen: the registry's
    // Mutex-ordered Relaxed shard cells, the RUNTIME kill switch, the
    // serve workers' recv-under-guard dequeue, three amortized or
    // cold-path allocations now visible through transitive hot-path
    // propagation, and the linter's own diagnostic timer. The span-tree
    // tracing layer added three: the trace-capture kill switch's
    // Relaxed store/load pair (a pure on/off gate publishing no data)
    // and the capture-gate read on the span fast path.
    assert!(
        report.waived.len() <= 43,
        "waiver count {} crossed the review threshold — prune or justify",
        report.waived.len()
    );
}
