//! netmaster-lint: workspace-aware static analysis for the NetMaster
//! repo. Machine-checks the project's own correctness rules — the
//! conventions DESIGN.md promises but `rustc`/clippy cannot see:
//!
//! | rule               | enforces                                                  |
//! |--------------------|-----------------------------------------------------------|
//! | `hot-path-alloc`   | no allocation in (or reachable from) `lint:hot-path` fns  |
//! | `feature-gate`     | obs feature wiring: manifests + scrape-API gating         |
//! | `metric-names`     | one registry for metric/journal names, docs in sync       |
//! | `panic-hygiene`    | no unwrap/expect/panic in library code outside tests      |
//! | `determinism`      | no wall clocks / unseeded RNG outside obs + bench         |
//! | `lock-order`       | no cycles in the lock-acquisition graph (deadlocks)       |
//! | `lock-across-io`   | no guard held across blocking I/O / channel waits         |
//! | `atomic-ordering`  | Relaxed store/load pairs justify themselves or upgrade    |
//! | `thread-lifecycle` | every `thread::spawn` has a reachable join/shutdown path  |
//!
//! Built std-only on a hand-rolled lexer ([`lexer`]), lexical region
//! analysis ([`source`]), and a best-effort symbol/call-graph resolver
//! ([`callgraph`]) — no syn, no proc-macros, no deps. The four
//! concurrency rules and transitive hot-path propagation consume the
//! call graph; its resolution policy and known false-negative classes
//! are documented on the [`callgraph`] module.
//! Findings are waivable inline with
//! `// lint:allow(<rule>) <reason>`; a waiver without a reason is
//! itself an error, and waivers that stop matching anything are
//! flagged so suppressions never outlive their cause.

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use callgraph::CallGraph;
pub use config::{Level, LintConfig, RULE_IDS};
pub use report::{Finding, Report, WaivedFinding};
pub use workspace::{find_root, LoadError, Workspace};

use rules::WaiverLedger;
use std::path::Path;

/// Rule id for waiver/directive syntax problems. Always active and
/// never waivable — a broken suppression must not suppress itself.
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// Lints the workspace rooted at `root` under `cfg`.
pub fn run_lint(root: &Path, cfg: &LintConfig) -> Result<Report, LoadError> {
    let ws = workspace::load(root)?;
    let graph = CallGraph::build(&ws);
    let mut report = Report::default();
    let mut ledger = WaiverLedger::default();
    report.files_scanned = ws.crates.iter().map(|c| c.files.len()).sum();

    // Waiver/directive syntax is checked unconditionally.
    for krate in &ws.crates {
        for file in &krate.files {
            for (line, msg) in &file.directive_errors {
                rules::emit_unwaivable(
                    &mut report,
                    WAIVER_SYNTAX,
                    &file.rel_path,
                    *line,
                    msg.clone(),
                );
            }
            for w in &file.waivers {
                if w.reason.is_empty() {
                    rules::emit_unwaivable(
                        &mut report,
                        WAIVER_SYNTAX,
                        &file.rel_path,
                        w.line,
                        format!(
                            "waiver for ({}) has no reason — a waiver must justify itself",
                            w.rules.join(", ")
                        ),
                    );
                }
                for r in &w.rules {
                    if r != "all" && !RULE_IDS.contains(&r.as_str()) {
                        rules::emit_unwaivable(
                            &mut report,
                            WAIVER_SYNTAX,
                            &file.rel_path,
                            w.line,
                            format!("waiver names unknown rule {r:?}"),
                        );
                    }
                }
            }
        }
    }

    type RuleFn = fn(&Workspace, &CallGraph, &LintConfig, &mut Report, &mut WaiverLedger);
    let catalogue: [(&'static str, RuleFn); 9] = [
        ("hot-path-alloc", rules::hot_path),
        ("feature-gate", rules::feature_gate),
        ("metric-names", rules::metric_names),
        ("panic-hygiene", rules::panic_hygiene),
        ("determinism", rules::determinism),
        ("lock-order", rules::lock_order),
        ("lock-across-io", rules::lock_across_io),
        ("atomic-ordering", rules::atomic_ordering),
        ("thread-lifecycle", rules::thread_lifecycle),
    ];
    for (id, rule) in catalogue {
        if cfg.denies(id) {
            report.rule_counts.insert(id, 0);
            // lint:allow(determinism) per-rule wall time is diagnostic output for the CI artifact, never analysis input
            let t0 = std::time::Instant::now();
            rule(&ws, &graph, cfg, &mut report, &mut ledger);
            report.rule_timings_us.insert(id, t0.elapsed().as_micros());
        }
    }

    // Waivers that suppress nothing are drift: the violation they
    // justified is gone, so the suppression must go too. Only checked
    // when every rule the waiver names actually ran.
    for krate in &ws.crates {
        for file in &krate.files {
            for (idx, w) in file.waivers.iter().enumerate() {
                if w.reason.is_empty() {
                    continue; // already flagged above
                }
                let all_ran = w.rules.iter().all(|r| {
                    if r == "all" {
                        RULE_IDS.iter().all(|id| cfg.denies(id))
                    } else {
                        cfg.denies(r)
                    }
                });
                if all_ran && !ledger.was_used(&file.rel_path, idx) {
                    rules::emit_unwaivable(
                        &mut report,
                        WAIVER_SYNTAX,
                        &file.rel_path,
                        w.line,
                        format!(
                            "waiver for ({}) no longer matches any finding — remove it",
                            w.rules.join(", ")
                        ),
                    );
                }
            }
        }
    }

    report.finalize();
    Ok(report)
}
