//! Per-file structural model built on the token stream: `#[cfg(test)]`
//! / `#[cfg(feature = "obs")]` regions, function bodies, inline
//! waivers, and `lint:hot-path` markers.
//!
//! The analysis is deliberately lexical: attribute regions are matched
//! by brace/semicolon extent, not a full parse. That is exact for the
//! item-level attributes this workspace uses and degrades conservatively
//! (a region found too small produces a lint *finding*, never a silent
//! pass of broken code).

use crate::lexer::{lex, Tok, TokKind};
use std::path::PathBuf;

/// What part of a crate a file belongs to — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Under `src/` (library or binary source).
    Src,
    /// Under `tests/`.
    TestDir,
    /// Under `examples/`.
    ExampleDir,
    /// Under `benches/`.
    BenchDir,
}

/// A `// lint:allow(rule, …) reason` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// Rule ids the waiver covers.
    pub rules: Vec<String>,
    /// Justification text after the closing paren (empty = invalid).
    pub reason: String,
}

/// One `fn` item found in the file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Code-token index range of the body, braces exclusive.
    pub body: (usize, usize),
    /// `true` when a `// lint:hot-path` marker targets this function.
    pub hot_path: bool,
}

/// A lexed and structurally-annotated source file.
pub struct SourceFile {
    /// Path relative to the workspace root (display / finding anchor).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Role by directory.
    pub role: FileRole,
    /// Non-comment tokens.
    pub code: Vec<Tok>,
    /// Comment tokens (line + block).
    pub comments: Vec<Tok>,
    /// Per-code-token: inside a `#[cfg(test)]` region.
    in_test: Vec<bool>,
    /// Per-code-token: inside a `#[cfg(feature = "obs")]` region.
    in_obs: Vec<bool>,
    /// The whole file is test-gated (declared `#[cfg(test)] mod x;`).
    pub file_test_gated: bool,
    /// The whole file is obs-gated (declared `#[cfg(feature = "obs")] mod x;`).
    pub file_obs_gated: bool,
    /// Functions (in token order).
    pub fns: Vec<FnInfo>,
    /// Waivers found in comments.
    pub waivers: Vec<Waiver>,
    /// Lines carrying a malformed `lint:` directive, with the problem.
    pub directive_errors: Vec<(u32, String)>,
    /// `mod name;` declarations with their gating, for module-tree
    /// propagation: (module name, test_gated, obs_gated).
    pub mod_decls: Vec<(String, bool, bool)>,
}

impl SourceFile {
    /// Lexes and annotates one file's source text.
    pub fn analyze(rel_path: String, abs_path: PathBuf, role: FileRole, src: &str) -> SourceFile {
        let toks = lex(src);
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for t in toks {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => comments.push(t),
                _ => code.push(t),
            }
        }
        let mut f = SourceFile {
            rel_path,
            abs_path,
            role,
            in_test: vec![false; code.len()],
            in_obs: vec![false; code.len()],
            code,
            comments,
            file_test_gated: false,
            file_obs_gated: false,
            fns: Vec::new(),
            waivers: Vec::new(),
            directive_errors: Vec::new(),
            mod_decls: Vec::new(),
        };
        f.find_cfg_regions();
        f.find_fns();
        f.find_directives();
        f
    }

    /// `true` when code token `i` is inside test-gated code.
    pub fn is_test(&self, i: usize) -> bool {
        self.file_test_gated || self.in_test.get(i).copied().unwrap_or(false)
    }

    /// `true` when code token `i` is inside obs-feature-gated code.
    pub fn is_obs_gated(&self, i: usize) -> bool {
        self.file_obs_gated || self.in_obs.get(i).copied().unwrap_or(false)
    }

    /// A waiver for `rule` covering `line` (the waiver's own line or
    /// the line directly above). Returns the waiver index.
    pub fn waiver_for(&self, rule: &str, line: u32) -> Option<usize> {
        self.waivers.iter().position(|w| {
            (w.line == line || w.line + 1 == line)
                && !w.reason.is_empty()
                && w.rules.iter().any(|r| r == rule || r == "all")
        })
    }

    fn find_cfg_regions(&mut self) {
        let n = self.code.len();
        let mut i = 0usize;
        while i < n {
            // Outer attribute `#[ … ]` (skip inner `#![ … ]`).
            if self.code[i].is_punct('#') && i + 1 < n && self.code[i + 1].is_punct('[') {
                let close = match self.matching_bracket(i + 1) {
                    Some(c) => c,
                    None => break,
                };
                let (is_test, is_obs) = classify_cfg(&self.code[i + 2..close]);
                if is_test || is_obs {
                    if let Some(end) = self.item_extent(close + 1) {
                        for k in close + 1..=end.min(n - 1) {
                            if is_test {
                                self.in_test[k] = true;
                            }
                            if is_obs {
                                self.in_obs[k] = true;
                            }
                        }
                        // `#[cfg(...)] mod name;` gates a whole child file.
                        self.record_gated_mod(close + 1, end, is_test, is_obs);
                    }
                }
                i = close + 1;
                continue;
            }
            // Ungated `mod name;` still needs recording for the tree.
            if self.code[i].is_ident("mod")
                && i + 2 < n
                && self.code[i + 1].kind == TokKind::Ident
                && self.code[i + 2].is_punct(';')
                && !self.in_test[i]
                && !self.in_obs[i]
            {
                let name = self.code[i + 1].text.clone();
                self.mod_decls.push((name, false, false));
                i += 3;
                continue;
            }
            i += 1;
        }
    }

    fn record_gated_mod(&mut self, start: usize, end: usize, is_test: bool, is_obs: bool) {
        let mut j = start;
        // Skip stacked attributes and visibility.
        while j < end {
            if self.code[j].is_punct('#') && j < end && self.code[j + 1].is_punct('[') {
                match self.matching_bracket(j + 1) {
                    Some(c) => j = c + 1,
                    None => return,
                }
            } else if self.code[j].is_ident("pub") {
                if j < end && self.code[j + 1].is_punct('(') {
                    match self.matching_paren(j + 1) {
                        Some(c) => j = c + 1,
                        None => return,
                    }
                } else {
                    j += 1;
                }
            } else {
                break;
            }
        }
        if j + 2 <= end
            && self.code[j].is_ident("mod")
            && self.code[j + 1].kind == TokKind::Ident
            && self.code[j + 2].is_punct(';')
        {
            self.mod_decls
                .push((self.code[j + 1].text.clone(), is_test, is_obs));
        }
    }

    /// Extent of the item starting at token `start`: index of the
    /// terminating `;` or the matching `}` of its first brace. A `,`
    /// terminates only field/variant-style items (no item keyword
    /// seen) — commas in generic return types (`-> Result<(), E>`)
    /// must not truncate a gated `fn`'s extent.
    fn item_extent(&self, start: usize) -> Option<usize> {
        let n = self.code.len();
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut saw_item_kw = false;
        let mut j = start;
        while j < n {
            let t = &self.code[j];
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "fn" | "mod"
                        | "struct"
                        | "enum"
                        | "trait"
                        | "impl"
                        | "use"
                        | "type"
                        | "const"
                        | "static"
                        | "macro_rules"
                )
            {
                saw_item_kw = true;
            }
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'(') => paren += 1,
                    Some(b')') => paren -= 1,
                    Some(b'[') => bracket += 1,
                    Some(b']') => bracket -= 1,
                    Some(b'{') if paren == 0 && bracket == 0 => {
                        return self.matching_brace(j);
                    }
                    Some(b';') if paren == 0 && bracket == 0 => {
                        return Some(j);
                    }
                    Some(b',') if paren == 0 && bracket == 0 && !saw_item_kw => {
                        return Some(j);
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        None
    }

    fn matching_brace(&self, open: usize) -> Option<usize> {
        self.matching(open, '{', '}')
    }

    fn matching_bracket(&self, open: usize) -> Option<usize> {
        self.matching(open, '[', ']')
    }

    fn matching_paren(&self, open: usize) -> Option<usize> {
        self.matching(open, '(', ')')
    }

    fn matching(&self, open: usize, o: char, c: char) -> Option<usize> {
        let mut depth = 0i32;
        for (j, t) in self.code.iter().enumerate().skip(open) {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }

    fn find_fns(&mut self) {
        // Hot-path marker lines, each claiming the next `fn`.
        let mut marker_lines: Vec<u32> = self
            .comments
            .iter()
            .filter(|c| c.text.trim_start().starts_with("lint:hot-path"))
            .map(|c| c.line)
            .collect();
        marker_lines.sort_unstable();

        let n = self.code.len();
        let mut fns = Vec::new();
        let mut i = 0usize;
        while i < n {
            if self.code[i].is_ident("fn") && i + 1 < n && self.code[i + 1].kind == TokKind::Ident {
                let name = self.code[i + 1].text.clone();
                let line = self.code[i].line;
                // Find the body brace (or `;` for trait declarations).
                let mut j = i + 1;
                let mut paren = 0i32;
                let mut body = None;
                while j < n {
                    let t = &self.code[j];
                    if t.is_punct('(') {
                        paren += 1;
                    } else if t.is_punct(')') {
                        paren -= 1;
                    } else if paren == 0 && t.is_punct(';') {
                        break;
                    } else if paren == 0 && t.is_punct('{') {
                        if let Some(close) = self.matching_brace(j) {
                            body = Some((j + 1, close));
                        }
                        break;
                    }
                    j += 1;
                }
                if let Some(body) = body {
                    let hot = marker_lines
                        .iter()
                        .any(|&ml| ml < line && self.first_fn_line_at_or_after(ml) == Some(line));
                    fns.push(FnInfo {
                        name,
                        line,
                        body,
                        hot_path: hot,
                    });
                }
            }
            i += 1;
        }
        self.fns = fns;
    }

    fn first_fn_line_at_or_after(&self, line: u32) -> Option<u32> {
        self.code
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                t.is_ident("fn")
                    && t.line > line
                    && self
                        .code
                        .get(i + 1)
                        .is_some_and(|nx| nx.kind == TokKind::Ident)
            })
            .map(|(_, t)| t.line)
            .next()
    }

    fn find_directives(&mut self) {
        for c in &self.comments {
            let text = c.text.trim_start();
            let Some(rest) = text.strip_prefix("lint:") else {
                continue;
            };
            if rest.starts_with("hot-path") {
                continue;
            }
            let Some(rest) = rest.strip_prefix("allow") else {
                self.directive_errors.push((
                    c.line,
                    format!("unknown lint directive `lint:{}`", rest.trim()),
                ));
                continue;
            };
            let rest = rest.trim_start();
            let Some(inner_and_tail) = rest.strip_prefix('(') else {
                self.directive_errors
                    .push((c.line, "lint:allow needs a (rule, …) list".to_owned()));
                continue;
            };
            let Some(close) = inner_and_tail.find(')') else {
                self.directive_errors
                    .push((c.line, "lint:allow is missing its closing paren".to_owned()));
                continue;
            };
            let rules: Vec<String> = inner_and_tail[..close]
                .split(',')
                .map(|r| r.trim().to_owned())
                .filter(|r| !r.is_empty())
                .collect();
            let reason = inner_and_tail[close + 1..].trim().to_owned();
            if rules.is_empty() {
                self.directive_errors
                    .push((c.line, "lint:allow lists no rules".to_owned()));
                continue;
            }
            self.waivers.push(Waiver {
                line: c.line,
                rules,
                reason,
            });
        }
    }
}

/// Classifies an attribute's token list: (`cfg(test)`-like,
/// `cfg(feature = "obs")`-like). `not(...)` attributes gate nothing.
fn classify_cfg(toks: &[Tok]) -> (bool, bool) {
    if !toks.first().is_some_and(|t| t.is_ident("cfg")) {
        return (false, false);
    }
    if toks.iter().any(|t| t.is_ident("not")) {
        return (false, false);
    }
    let has_test = toks.iter().any(|t| t.is_ident("test"));
    let has_obs_feature = toks
        .windows(3)
        .any(|w| w[0].is_ident("feature") && w[1].is_punct('=') && w[2].str_value() == Some("obs"));
    (has_test, has_obs_feature)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::analyze(
            "mem.rs".into(),
            PathBuf::from("/mem.rs"),
            FileRole::Src,
            src,
        )
    }

    #[test]
    fn test_mod_region_is_detected() {
        let src =
            "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let f = file(src);
        let unwraps: Vec<usize> = f
            .code
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.is_test(unwraps[0]));
        assert!(f.is_test(unwraps[1]));
    }

    #[test]
    fn obs_gated_item_and_mod_decl() {
        let src = "#[cfg(feature = \"obs\")]\npub mod watchtower;\nfn open() {}\n#[cfg(feature = \"obs\")]\nfn gated() { scrape(); }\n";
        let f = file(src);
        assert_eq!(f.mod_decls, vec![("watchtower".to_owned(), false, true)]);
        let scrape = f.code.iter().position(|t| t.is_ident("scrape")).unwrap();
        assert!(f.is_obs_gated(scrape));
        let open = f.code.iter().position(|t| t.is_ident("open")).unwrap();
        assert!(!f.is_obs_gated(open));
    }

    #[test]
    fn negated_cfg_gates_nothing() {
        let src = "#[cfg(not(test))]\nfn prod() { a.unwrap(); }\n#[cfg(not(feature = \"obs\"))]\nfn stub() { b(); }\n";
        let f = file(src);
        assert!(f.in_test.iter().all(|&x| !x));
        assert!(f.in_obs.iter().all(|&x| !x));
    }

    #[test]
    fn hot_path_marker_binds_to_next_fn() {
        let src = "fn cold() {}\n// lint:hot-path\n#[inline]\npub fn hot(x: u8) { go(); }\nfn also_cold() {}\n";
        let f = file(src);
        let flags: Vec<(String, bool)> =
            f.fns.iter().map(|f| (f.name.clone(), f.hot_path)).collect();
        assert_eq!(
            flags,
            vec![
                ("cold".to_owned(), false),
                ("hot".to_owned(), true),
                ("also_cold".to_owned(), false)
            ]
        );
    }

    #[test]
    fn waivers_parse_with_and_without_reason() {
        let src = "// lint:allow(panic-hygiene) mutex poisoning is unrecoverable\nx.unwrap();\n// lint:allow(determinism)\ny();\n";
        let f = file(src);
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].rules, vec!["panic-hygiene"]);
        assert!(!f.waivers[0].reason.is_empty());
        assert!(f.waivers[1].reason.is_empty());
        // Covering: own line + next line; reasonless waivers never match.
        assert!(f.waiver_for("panic-hygiene", 2).is_some());
        assert!(f.waiver_for("determinism", 4).is_none());
    }

    #[test]
    fn malformed_directives_are_errors() {
        let f = file("// lint:allow panic-hygiene missing parens\nfn a() {}\n// lint:deny(x)\n");
        assert_eq!(f.directive_errors.len(), 2);
    }

    #[test]
    fn fn_bodies_span_their_braces() {
        let src = "fn outer(a: [u8; 2]) -> Result<(), ()> { inner(); Ok(()) }\nfn next() {}\n";
        let f = file(src);
        assert_eq!(f.fns[0].name, "outer");
        let (b, e) = f.fns[0].body;
        assert!(f.code[b..e].iter().any(|t| t.is_ident("inner")));
        assert!(!f.code[b..e].iter().any(|t| t.is_ident("next")));
    }
}
