//! Workspace call graph built on the lexical layer: a per-crate
//! function index, `use`-path resolution, and best-effort call edges
//! that the concurrency rules and transitive hot-path propagation
//! consume.
//!
//! # Resolution policy (best-effort, documented)
//!
//! The resolver is lexical — no type information exists. Edges are
//! built in three tiers:
//!
//! 1. **Path calls** (`foo(…)`, `module::foo(…)`, `krate::m::foo(…)`):
//!    the path's head segment is expanded through the file's `use`
//!    aliases; a segment matching a workspace crate (with `-`/`_`
//!    normalized) scopes the lookup to that crate, `crate`/`self`/
//!    `super` scope it to the defining crate, and a bare name prefers
//!    a same-file function, then a same-crate one. These edges are
//!    `confident` when exactly one candidate survives.
//! 2. **Method calls** (`recv.foo(…)`): resolved by name to functions
//!    that take a `self` receiver — same crate first, then workspace.
//!    Names colliding with std container/trait vocabulary (`push`,
//!    `len`, `clone`, `insert`, …) are never resolved: a lexical
//!    match on those would wire `Vec::push` to any workspace `push`.
//!    Method edges are `confident` only when a single candidate exists.
//! 3. **Unresolved** calls (std/external functions, trait-object and
//!    closure dispatch, macro-generated code) produce no edge.
//!
//! Known false-negative classes, accepted by design: dynamic trait
//! dispatch, function pointers and closures passed as values, calls
//! through the std-name denylist, and macro-expanded calls. Rules that
//! propagate facts through the graph (lock-order, lock-across-io,
//! transitive hot-path) follow **confident edges only**, so ambiguity
//! degrades to missed propagation, never to a flood of false
//! positives.

use crate::lexer::TokKind;
use crate::source::{FileRole, SourceFile};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, VecDeque};

/// Index of a function in [`CallGraph::fns`].
pub type FnId = usize;

/// One function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Defining crate's package name.
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// (crate index, file index) into the [`Workspace`].
    pub loc: (usize, usize),
    /// Index into the file's `fns` vector.
    pub fn_idx: usize,
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Code-token body range, braces exclusive.
    pub body: (usize, usize),
    /// Carries a `// lint:hot-path` marker.
    pub hot_path: bool,
    /// Defined in test-gated code or a tests/ file.
    pub is_test: bool,
    /// Takes a `self` receiver (method) — used to disambiguate
    /// method-call targets from free functions.
    pub has_self: bool,
}

/// How a call site was matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `foo(…)` / `path::foo(…)`.
    Path,
    /// `.foo(…)`.
    Method,
}

/// One call edge out of a function.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee function.
    pub callee: FnId,
    /// Code-token index of the call site (the name token).
    pub tok: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// Path or method match.
    pub kind: EdgeKind,
    /// Exactly one candidate matched — safe for transitive
    /// propagation.
    pub confident: bool,
}

/// The queryable workspace call graph.
pub struct CallGraph {
    /// All functions, in workspace order.
    pub fns: Vec<FnNode>,
    /// Outgoing edges per function.
    pub edges: Vec<Vec<Edge>>,
}

/// Method names that collide with std container/trait vocabulary and
/// are therefore never resolved (tier 2 denylist).
const STD_METHOD_NAMES: &[&str] = &[
    "as_mut",
    "as_ref",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "default",
    "drain",
    "drop",
    "entry",
    "eq",
    "extend",
    "filter",
    "flush",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "next",
    "pop",
    "push",
    "push_str",
    "read",
    "recv",
    "remove",
    "retain",
    "send",
    "sort",
    "sort_by",
    "spawn",
    "split",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_lock",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "with_capacity",
    "write",
];

/// Keywords that can precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "break", "continue", "else", "fn", "for", "if", "impl", "in", "let", "loop", "match",
    "move", "mut", "pub", "ref", "return", "unsafe", "use", "where", "while",
];

impl CallGraph {
    /// Builds the graph for a loaded workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut fns = Vec::new();
        // (crate, name) → ids; name → ids.
        let mut by_crate_name: BTreeMap<(usize, String), Vec<FnId>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        // crate package name (normalized) → crate index.
        let mut crate_of: BTreeMap<String, usize> = BTreeMap::new();

        for (ki, krate) in ws.crates.iter().enumerate() {
            crate_of.insert(norm(&krate.name), ki);
            for (fi, file) in krate.files.iter().enumerate() {
                for (fnx, f) in file.fns.iter().enumerate() {
                    let id = fns.len();
                    let is_test = file.role != FileRole::Src || file.is_test(f.body.0);
                    fns.push(FnNode {
                        krate: krate.name.clone(),
                        file: file.rel_path.clone(),
                        loc: (ki, fi),
                        fn_idx: fnx,
                        name: f.name.clone(),
                        line: f.line,
                        body: f.body,
                        hot_path: f.hot_path,
                        is_test,
                        has_self: fn_has_self(file, f.body),
                    });
                    by_crate_name
                        .entry((ki, f.name.clone()))
                        .or_default()
                        .push(id);
                    by_name.entry(f.name.clone()).or_default().push(id);
                }
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for caller in 0..fns.len() {
            let (ki, fi) = fns[caller].loc;
            let file = &ws.crates[ki].files[fi];
            let aliases = parse_use_aliases(file);
            let (start, end) = fns[caller].body;
            let code = &file.code;
            let end = end.min(code.len());
            let mut i = start;
            while i < end {
                // Method call: `. name (` — not a path (`::name(`).
                if code[i].is_punct('.')
                    && i + 2 < end
                    && code[i + 1].kind == TokKind::Ident
                    && code[i + 2].is_punct('(')
                {
                    let name = code[i + 1].text.as_str();
                    if !STD_METHOD_NAMES.contains(&name) {
                        let cands = method_candidates(&by_crate_name, &by_name, &fns, ki, name);
                        let confident = cands.len() == 1;
                        for c in cands {
                            if c != caller {
                                edges[caller].push(Edge {
                                    callee: c,
                                    tok: i + 1,
                                    line: code[i + 1].line,
                                    kind: EdgeKind::Method,
                                    confident,
                                });
                            }
                        }
                    }
                    i += 3;
                    continue;
                }
                // Path / free call: `name (` where the previous token
                // is neither `.` nor `fn` (declarations).
                if code[i].kind == TokKind::Ident
                    && i + 1 < end
                    && code[i + 1].is_punct('(')
                    && !NON_CALL_KEYWORDS.contains(&code[i].text.as_str())
                    && !(i > 0 && (code[i - 1].is_punct('.') || code[i - 1].is_ident("fn")))
                {
                    let path = path_segments(code, i, start);
                    if path.len() == 1 && path[0].chars().next().is_some_and(char::is_uppercase) {
                        // `Some(…)` / `Ok(…)` / tuple-struct literals:
                        // bare uppercase names are constructors, not
                        // calls.
                        i += 1;
                        continue;
                    }
                    let cands = resolve_path(
                        &path,
                        &aliases,
                        &crate_of,
                        &by_crate_name,
                        &by_name,
                        &fns,
                        ki,
                        fi,
                    );
                    let confident = cands.len() == 1;
                    for c in cands {
                        if c != caller {
                            edges[caller].push(Edge {
                                callee: c,
                                tok: i,
                                line: code[i].line,
                                kind: EdgeKind::Path,
                                confident,
                            });
                        }
                    }
                }
                i += 1;
            }
        }

        CallGraph { fns, edges }
    }

    /// Functions defined in `file` (workspace-relative path).
    pub fn fns_in_file<'a>(&'a self, rel_path: &'a str) -> impl Iterator<Item = FnId> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.file == rel_path)
            .map(|(i, _)| i)
    }

    /// The function whose body contains code-token index `tok` of
    /// `file`, if any. Inner fns shadow outer ones (smallest body
    /// wins).
    pub fn enclosing_fn(&self, rel_path: &str, tok: usize) -> Option<FnId> {
        self.fns_in_file(rel_path)
            .filter(|&id| {
                let (s, e) = self.fns[id].body;
                s <= tok && tok < e
            })
            .min_by_key(|&id| {
                let (s, e) = self.fns[id].body;
                e - s
            })
    }

    /// Breadth-first reachability over **confident** edges from
    /// `seeds`. Returns per-fn reachability plus a BFS parent map for
    /// reconstructing one witness call chain.
    pub fn reachable(&self, seeds: &[FnId]) -> (Vec<bool>, Vec<Option<FnId>>) {
        let mut seen = vec![false; self.fns.len()];
        let mut parent: Vec<Option<FnId>> = vec![None; self.fns.len()];
        let mut q: VecDeque<FnId> = VecDeque::new();
        for &s in seeds {
            if !seen[s] {
                seen[s] = true;
                q.push_back(s);
            }
        }
        while let Some(u) = q.pop_front() {
            for e in &self.edges[u] {
                if e.confident && !seen[e.callee] {
                    seen[e.callee] = true;
                    parent[e.callee] = Some(u);
                    q.push_back(e.callee);
                }
            }
        }
        (seen, parent)
    }

    /// One witness call chain `seed → … → id` from a
    /// [`CallGraph::reachable`] parent map, rendered as fn names.
    pub fn chain(&self, parent: &[Option<FnId>], mut id: FnId) -> Vec<String> {
        let mut out = vec![self.fns[id].name.clone()];
        while let Some(p) = parent[id] {
            out.push(self.fns[p].name.clone());
            id = p;
        }
        out.reverse();
        out
    }
}

/// `netmaster-obs` and `netmaster_obs` are the same crate.
fn norm(name: &str) -> String {
    name.replace('-', "_")
}

/// Does the fn whose body starts at `body.0` take `self`? Anchors on
/// the `fn` keyword (a return type like `-> Result<(), E>` sits
/// between the parameter list and the body, so walking parens back
/// from the brace would mis-land) and checks the first tokens of the
/// parameter list for `self`, `&self`, `&'a mut self`, `mut self`.
fn fn_has_self(file: &SourceFile, body: (usize, usize)) -> bool {
    let mut j = body.0.saturating_sub(1); // at `{`
    while j > 0 && !file.code[j].is_ident("fn") {
        j -= 1;
    }
    let mut k = j;
    while k < body.0 && !file.code[k].is_punct('(') {
        k += 1;
    }
    file.code
        .get(k + 1..(k + 5).min(body.0))
        .unwrap_or_default()
        .iter()
        .take_while(|t| !t.is_punct(')'))
        .any(|t| t.is_ident("self"))
}

/// Collects the `::`-separated path ending at the name token `i`,
/// walking backwards (`a :: b :: name` → `["a","b","name"]`). `::` is
/// two `:` punct tokens in this lexer.
fn path_segments(code: &[crate::lexer::Tok], i: usize, floor: usize) -> Vec<String> {
    let mut segs = vec![code[i].text.clone()];
    let mut j = i;
    while j >= 3
        && j - 3 >= floor.min(j)
        && code[j - 1].is_punct(':')
        && code[j - 2].is_punct(':')
        && code[j - 3].kind == TokKind::Ident
    {
        segs.push(code[j - 3].text.clone());
        j -= 3;
    }
    segs.reverse();
    segs
}

/// Per-file `use` alias map: local head name → full path segments.
fn parse_use_aliases(file: &SourceFile) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let code = &file.code;
    let n = code.len();
    let mut i = 0usize;
    while i < n {
        if !code[i].is_ident("use") {
            i += 1;
            continue;
        }
        // Collect tokens to the terminating `;`.
        let mut j = i + 1;
        while j < n && !code[j].is_punct(';') {
            j += 1;
        }
        collect_use_tree(&code[i + 1..j], &[], &mut out);
        i = j + 1;
    }
    out
}

/// Expands one `use` tree (`a::b::{c, d as e}`) into leaf aliases.
fn collect_use_tree(
    toks: &[crate::lexer::Tok],
    prefix: &[String],
    out: &mut BTreeMap<String, Vec<String>>,
) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            path.push(t.text.clone());
            i += 1;
        } else if t.is_punct(':') {
            i += 1; // path separator halves
        } else if t.is_ident("as") {
            if let Some(alias) = toks.get(i + 1) {
                out.insert(alias.text.clone(), path.clone());
            }
            return;
        } else if t.is_punct('{') {
            // Split the group body on top-level commas and recurse.
            let mut depth = 0i32;
            let mut close = i;
            for (k, u) in toks.iter().enumerate().skip(i) {
                if u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
            }
            let body = &toks[i + 1..close];
            let mut seg_start = 0usize;
            let mut d = 0i32;
            for (k, u) in body.iter().enumerate() {
                if u.is_punct('{') {
                    d += 1;
                } else if u.is_punct('}') {
                    d -= 1;
                } else if u.is_punct(',') && d == 0 {
                    collect_use_tree(&body[seg_start..k], &path, out);
                    seg_start = k + 1;
                }
            }
            if seg_start < body.len() {
                collect_use_tree(&body[seg_start..], &path, out);
            }
            return;
        } else if t.is_punct('*') {
            return; // glob imports resolve nothing
        } else {
            i += 1;
        }
    }
    if let Some(last) = path.last().cloned() {
        if !path.is_empty() {
            out.insert(last, path);
        }
    }
}

/// Tier-2 method candidates: `self`-taking fns named `name`, same
/// crate first, then workspace-wide.
fn method_candidates(
    by_crate_name: &BTreeMap<(usize, String), Vec<FnId>>,
    by_name: &BTreeMap<String, Vec<FnId>>,
    fns: &[FnNode],
    ki: usize,
    name: &str,
) -> Vec<FnId> {
    let in_crate: Vec<FnId> = by_crate_name
        .get(&(ki, name.to_owned()))
        .map(|v| v.iter().copied().filter(|&id| fns[id].has_self).collect())
        .unwrap_or_default();
    if !in_crate.is_empty() {
        return in_crate;
    }
    by_name
        .get(name)
        .map(|v| v.iter().copied().filter(|&id| fns[id].has_self).collect())
        .unwrap_or_default()
}

/// Tier-1 path resolution (see module docs).
#[allow(clippy::too_many_arguments)]
fn resolve_path(
    path: &[String],
    aliases: &BTreeMap<String, Vec<String>>,
    crate_of: &BTreeMap<String, usize>,
    by_crate_name: &BTreeMap<(usize, String), Vec<FnId>>,
    by_name: &BTreeMap<String, Vec<FnId>>,
    fns: &[FnNode],
    ki: usize,
    fi: usize,
) -> Vec<FnId> {
    let name = match path.last() {
        Some(n) => n.clone(),
        None => return Vec::new(),
    };
    // Expand the head segment through `use` aliases.
    let mut full: Vec<String> = Vec::new();
    if path.len() > 1 {
        if let Some(exp) = aliases.get(&path[0]) {
            full.extend(exp.iter().cloned());
            full.extend(path[1..].iter().cloned());
        } else {
            full.extend(path.iter().cloned());
        }
    } else if let Some(exp) = aliases.get(&name) {
        full.extend(exp.iter().cloned());
    } else {
        full.push(name.clone());
    }
    // An alias may rename the leaf (`use util::tock as beat;`): the
    // definition-side name is the expanded path's last segment.
    let name = match full.last() {
        Some(n) => n.clone(),
        None => return Vec::new(),
    };

    // Bare name: same file shadows same crate.
    if full.len() == 1 {
        let same_file: Vec<FnId> = by_crate_name
            .get(&(ki, name.clone()))
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| fns[id].loc == (ki, fi))
                    .collect()
            })
            .unwrap_or_default();
        if !same_file.is_empty() {
            return same_file;
        }
        return by_crate_name.get(&(ki, name)).cloned().unwrap_or_default();
    }

    // Qualified: find a crate anchor in the path.
    let target_crate = full.iter().find_map(|seg| match seg.as_str() {
        "crate" | "self" | "super" => Some(ki),
        s => crate_of.get(&norm(s)).copied(),
    });
    match target_crate {
        Some(tk) => by_crate_name.get(&(tk, name)).cloned().unwrap_or_default(),
        None => {
            // Module-qualified local call (`solver::solve(…)`) or a
            // type-associated fn (`Foo::new(…)`): try same crate by
            // name, then give up rather than guess workspace-wide for
            // common associated names.
            let in_crate = by_crate_name
                .get(&(ki, name.clone()))
                .cloned()
                .unwrap_or_default();
            if !in_crate.is_empty() {
                return in_crate;
            }
            if full
                .first()
                .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
            {
                return Vec::new();
            }
            by_name.get(&name).cloned().unwrap_or_default()
        }
    }
}

/// Convenience for rules: the set of confident edges out of `id`
/// whose call-site token lies in `range`.
pub fn calls_in_range(
    graph: &CallGraph,
    id: FnId,
    range: (usize, usize),
) -> impl Iterator<Item = &Edge> {
    graph.edges[id]
        .iter()
        .filter(move |e| e.confident && e.tok >= range.0 && e.tok < range.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{CrateInfo, Manifest};
    use std::path::PathBuf;

    fn ws(crates: Vec<(&str, Vec<(&str, &str)>)>) -> Workspace {
        let crates = crates
            .into_iter()
            .map(|(name, files)| CrateInfo {
                name: name.to_owned(),
                rel_dir: format!("crates/{name}"),
                manifest: Manifest {
                    name: name.to_owned(),
                    ..Manifest::default()
                },
                files: files
                    .into_iter()
                    .map(|(rel, src)| {
                        SourceFile::analyze(
                            rel.to_owned(),
                            PathBuf::from(format!("/{rel}")),
                            FileRole::Src,
                            src,
                        )
                    })
                    .collect(),
            })
            .collect();
        Workspace {
            root: PathBuf::from("/"),
            crates,
            root_manifest: Manifest::default(),
        }
    }

    fn id(g: &CallGraph, file: &str, name: &str) -> FnId {
        g.fns
            .iter()
            .position(|f| f.file == file && f.name == name)
            .unwrap_or_else(|| panic!("no fn {name} in {file}"))
    }

    fn callees(g: &CallGraph, from: FnId) -> Vec<&str> {
        g.edges[from]
            .iter()
            .map(|e| g.fns[e.callee].name.as_str())
            .collect()
    }

    #[test]
    fn same_file_call_and_shadowing() {
        // `helper` exists in both files of the same crate; the caller's
        // own file shadows the sibling.
        let g = CallGraph::build(&ws(vec![(
            "app",
            vec![
                ("a.rs", "fn helper() {}\nfn caller() { helper(); }\n"),
                ("b.rs", "fn helper() {}\n"),
            ],
        )]));
        let caller = id(&g, "a.rs", "caller");
        assert_eq!(callees(&g, caller), vec!["helper"]);
        assert_eq!(g.edges[caller].len(), 1);
        assert!(g.edges[caller][0].confident);
        assert_eq!(g.fns[g.edges[caller][0].callee].file, "a.rs");
    }

    #[test]
    fn use_alias_resolves_cross_crate() {
        let g = CallGraph::build(&ws(vec![
            (
                "app",
                vec![(
                    "main.rs",
                    "use netmaster_core::solver as sv;\nfn run() { sv::solve(); }\n",
                )],
            ),
            ("netmaster-core", vec![("solver.rs", "pub fn solve() {}\n")]),
        ]));
        let run = id(&g, "main.rs", "run");
        assert_eq!(callees(&g, run), vec!["solve"]);
        assert_eq!(g.fns[g.edges[run][0].callee].krate, "netmaster-core");
        assert!(g.edges[run][0].confident);
    }

    #[test]
    fn direct_fn_import_and_grouped_aliases() {
        let g = CallGraph::build(&ws(vec![
            (
                "app",
                vec![(
                    "main.rs",
                    "use util::{tick, tock as beat};\nfn go() { tick(); beat(); }\n",
                )],
            ),
            (
                "util",
                vec![("lib.rs", "pub fn tick() {}\npub fn tock() {}\n")],
            ),
        ]));
        let go = id(&g, "main.rs", "go");
        let mut names = callees(&g, go);
        names.sort_unstable();
        assert_eq!(names, vec!["tick", "tock"]);
    }

    #[test]
    fn cross_crate_full_path() {
        let g = CallGraph::build(&ws(vec![
            (
                "app",
                vec![("m.rs", "fn f() { netmaster_obs::hub::publish(); }\n")],
            ),
            ("netmaster-obs", vec![("hub.rs", "pub fn publish() {}\n")]),
        ]));
        let f = id(&g, "m.rs", "f");
        assert_eq!(callees(&g, f), vec!["publish"]);
        assert_eq!(g.fns[g.edges[f][0].callee].krate, "netmaster-obs");
    }

    #[test]
    fn method_calls_resolve_to_self_fns_only() {
        // `flush_all` exists as a method and a free fn; `.flush_all()`
        // must pick the method, `flush_all()` the same-file free fn.
        let g = CallGraph::build(&ws(vec![(
            "app",
            vec![
                (
                    "hub.rs",
                    "struct Hub;\nimpl Hub {\n fn flush_all(&self) {}\n fn kick(&self, h: &Hub) { h.flush_all(); }\n}\n",
                ),
                (
                    "free.rs",
                    "pub fn flush_all() {}\npub fn drive() { flush_all(); }\n",
                ),
            ],
        )]));
        let kick = id(&g, "hub.rs", "kick");
        assert_eq!(g.edges[kick].len(), 1, "{:?}", g.edges[kick]);
        assert_eq!(g.fns[g.edges[kick][0].callee].file, "hub.rs");
        assert_eq!(g.edges[kick][0].kind, EdgeKind::Method);
        assert!(g.edges[kick][0].confident);

        let drive = id(&g, "free.rs", "drive");
        assert_eq!(g.edges[drive].len(), 1);
        assert_eq!(g.fns[g.edges[drive][0].callee].file, "free.rs");
        assert_eq!(g.edges[drive][0].kind, EdgeKind::Path);
    }

    #[test]
    fn std_method_names_are_never_resolved() {
        let g = CallGraph::build(&ws(vec![(
            "app",
            vec![(
                "store.rs",
                "struct S;\nimpl S {\n fn push(&mut self) {}\n}\nfn hot(v: &mut Vec<u8>) { v.push(1); }\n",
            )],
        )]));
        let hot = id(&g, "store.rs", "hot");
        assert!(g.edges[hot].is_empty(), "{:?}", g.edges[hot]);
    }

    #[test]
    fn ambiguous_methods_are_not_confident() {
        let g = CallGraph::build(&ws(vec![(
            "app",
            vec![(
                "two.rs",
                "struct A;\nstruct B;\nimpl A { fn refill(&self) {} }\nimpl B { fn refill(&self) {} }\nfn f(a: &A) { a.refill(); }\n",
            )],
        )]));
        let f = id(&g, "two.rs", "f");
        assert_eq!(g.edges[f].len(), 2);
        assert!(g.edges[f].iter().all(|e| !e.confident));
    }

    #[test]
    fn reachability_and_chain() {
        let g = CallGraph::build(&ws(vec![(
            "app",
            vec![(
                "lib.rs",
                "// lint:hot-path\npub fn hot() { mid(); }\nfn mid() { deep(); }\nfn deep() {}\nfn cold() {}\n",
            )],
        )]));
        let hot = id(&g, "lib.rs", "hot");
        let deep = id(&g, "lib.rs", "deep");
        let cold = id(&g, "lib.rs", "cold");
        let (seen, parent) = g.reachable(&[hot]);
        assert!(seen[deep] && !seen[cold]);
        assert_eq!(g.chain(&parent, deep), vec!["hot", "mid", "deep"]);
    }

    #[test]
    fn constructors_and_keywords_are_not_calls() {
        let g = CallGraph::build(&ws(vec![(
            "app",
            vec![(
                "lib.rs",
                "fn f(x: u8) -> Option<u8> { if x > 1 { return Some(x); } while x > 9 { } None }\n",
            )],
        )]));
        let f = id(&g, "lib.rs", "f");
        assert!(g.edges[f].is_empty());
    }

    #[test]
    fn enclosing_fn_finds_smallest_body() {
        let g = CallGraph::build(&ws(vec![(
            "app",
            vec![(
                "lib.rs",
                "fn outer() { fn inner() { leaf(); } inner(); }\nfn leaf() {}\n",
            )],
        )]));
        let inner = id(&g, "lib.rs", "inner");
        let (s, _) = g.fns[inner].body;
        assert_eq!(g.enclosing_fn("lib.rs", s), Some(inner));
    }
}
