//! L3 `metric-names`: one source of truth for observability names.
//!
//! `crates/obs/src/registry_names.rs` declares every metric name and
//! journal event kind as a `const`. This rule checks, in order:
//!
//! 1. the registry exists and its names are well-formed (metrics in
//!    the Prometheus charset `[a-z_][a-z0-9_]*`, kinds CamelCase) and
//!    duplicate-free;
//! 2. every *literal* metric name at an instrumentation site
//!    (`counter!`, `observe!`, `gauge_set`/`gauge_max`, `timer!`, and
//!    `span!` after its `stage_<name>_seconds` expansion) is registered;
//! 3. the registry's `HELP` table covers every metric const (the
//!    scrape server renders `# HELP` exposition lines from it), and
//!    the telemetry-plane modules (`obs/src/serve.rs`, `obs/src/hub.rs`,
//!    `obs/src/store.rs`, `obs/src/alerts.rs`, `obs/src/spantree.rs`,
//!    `obs/src/profile.rs`) mint no metric-shaped string outside the
//!    registry;
//! 4. the `DecisionEvent` enum's variants and the registry's kind
//!    consts match exactly, both directions;
//! 5. docs drift: every registered name appears in DESIGN.md or
//!    EXPERIMENTS.md, and every metric-shaped backtick token in those
//!    docs is registered.

use super::{emit, emit_unwaivable, WaiverLedger};
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::report::Report;
use crate::source::{FileRole, SourceFile};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;

const RULE: &str = "metric-names";
const REGISTRY_SUFFIX: &str = "registry_names.rs";
const DOC_FILES: &[&str] = &["DESIGN.md", "EXPERIMENTS.md"];

/// Runs L3 across the workspace.
pub fn check(
    ws: &Workspace,
    _graph: &crate::callgraph::CallGraph,
    _cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    let Some(registry) = ws
        .crates
        .iter()
        .flat_map(|c| c.files.iter())
        .find(|f| f.rel_path.ends_with(REGISTRY_SUFFIX))
    else {
        emit_unwaivable(
            report,
            RULE,
            "(workspace)",
            0,
            format!("metric-name registry `{REGISTRY_SUFFIX}` not found — it is the single source of truth for metric/journal names"),
        );
        return;
    };
    let reg_path = registry.rel_path.clone();

    // --- 1. Parse + validate the registry itself. ---
    let consts = registry_consts(registry);
    let mut metrics: BTreeMap<String, u32> = BTreeMap::new(); // value -> line
    let mut kinds: BTreeMap<String, u32> = BTreeMap::new();
    for (_name, value, line) in &consts {
        let table = if value.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            if !value.chars().all(|c| c.is_ascii_alphanumeric()) {
                emit_unwaivable(
                    report,
                    RULE,
                    &reg_path,
                    *line,
                    format!("journal kind {value:?} must be CamelCase alphanumeric"),
                );
            }
            &mut kinds
        } else {
            if !is_prometheus_name(value) {
                emit_unwaivable(
                    report,
                    RULE,
                    &reg_path,
                    *line,
                    format!(
                        "metric name {value:?} must match [a-z_][a-z0-9_]* (Prometheus charset)"
                    ),
                );
            }
            &mut metrics
        };
        if table.insert(value.clone(), *line).is_some() {
            emit_unwaivable(
                report,
                RULE,
                &reg_path,
                *line,
                format!("duplicate registry entry {value:?}"),
            );
        }
    }

    // --- 2. Literal instrumentation sites must be registered. ---
    for krate in &ws.crates {
        for file in &krate.files {
            if file.role != FileRole::Src || file.rel_path.ends_with(REGISTRY_SUFFIX) {
                continue;
            }
            for (line, name, site) in literal_sites(file) {
                if !metrics.contains_key(&name) {
                    emit(
                        report,
                        ledger,
                        file,
                        RULE,
                        line,
                        format!("{site} uses unregistered metric name {name:?} — add it to {REGISTRY_SUFFIX}"),
                    );
                }
            }
        }
    }

    // --- 3a. The HELP table must cover every metric const. ---
    match help_table_idents(registry) {
        Some(help_idents) => {
            for (name, value, line) in &consts {
                if metrics.contains_key(value) && !help_idents.contains(name) {
                    emit_unwaivable(
                        report,
                        RULE,
                        &reg_path,
                        *line,
                        format!("metric const `{name}` has no HELP entry — /metrics renders `# HELP` lines from that table"),
                    );
                }
            }
        }
        None => {
            if !metrics.is_empty() {
                emit_unwaivable(
                    report,
                    RULE,
                    &reg_path,
                    0,
                    format!("no `const HELP` table in {REGISTRY_SUFFIX} — /metrics renders `# HELP` lines from it"),
                );
            }
        }
    }

    // --- 3b. Telemetry-plane modules must not mint metric names. ---
    for krate in &ws.crates {
        for file in &krate.files {
            let plane = file.rel_path.ends_with("obs/src/serve.rs")
                || file.rel_path.ends_with("obs/src/hub.rs")
                || file.rel_path.ends_with("obs/src/store.rs")
                || file.rel_path.ends_with("obs/src/alerts.rs")
                || file.rel_path.ends_with("obs/src/spantree.rs")
                || file.rel_path.ends_with("obs/src/profile.rs");
            if !plane || file.role != FileRole::Src {
                continue;
            }
            for i in 0..file.code.len() {
                if file.is_test(i) {
                    continue;
                }
                if let Some(v) = file.code[i].str_value() {
                    if looks_like_metric(v) && !metrics.contains_key(v) {
                        emit(
                            report,
                            ledger,
                            file,
                            RULE,
                            file.code[i].line,
                            format!("telemetry-plane string {v:?} is metric-shaped but unregistered — add it to {REGISTRY_SUFFIX}"),
                        );
                    }
                }
            }
        }
    }

    // --- 4. DecisionEvent variants <-> kind consts, both directions. ---
    if let Some((journal, variants)) = decision_event_variants(ws) {
        for (variant, line) in &variants {
            if !kinds.contains_key(variant) {
                emit_unwaivable(
                    report,
                    RULE,
                    &journal,
                    *line,
                    format!("DecisionEvent::{variant} has no kind const in {REGISTRY_SUFFIX}"),
                );
            }
        }
        let variant_names: BTreeSet<&String> = variants.iter().map(|(v, _)| v).collect();
        for (kind, line) in &kinds {
            if !variant_names.contains(kind) {
                emit_unwaivable(
                    report,
                    RULE,
                    &reg_path,
                    *line,
                    format!("registry kind {kind:?} matches no DecisionEvent variant"),
                );
            }
        }
    }

    // --- 5. Docs drift, both directions. ---
    let mut docs_text = String::new();
    let mut any_docs = false;
    for doc in DOC_FILES {
        let path = ws.root.join(doc);
        if let Ok(text) = fs::read_to_string(&path) {
            any_docs = true;
            // Direction docs -> registry.
            for (line_no, token) in backtick_metric_tokens(&text) {
                if !metrics.contains_key(&token) {
                    emit_unwaivable(
                        report,
                        RULE,
                        doc,
                        line_no,
                        format!(
                            "documented metric {token:?} is not in {REGISTRY_SUFFIX} (docs drift)"
                        ),
                    );
                }
            }
            docs_text.push_str(&text);
            docs_text.push('\n');
        }
    }
    if !any_docs {
        emit_unwaivable(
            report,
            RULE,
            "(workspace)",
            0,
            format!("none of {DOC_FILES:?} exist — registered metrics must be documented"),
        );
        return;
    }
    // Direction registry -> docs.
    for (value, line) in metrics.iter().chain(kinds.iter()) {
        if !docs_text.contains(value.as_str()) {
            emit_unwaivable(
                report,
                RULE,
                &reg_path,
                *line,
                format!("registered name {value:?} appears in none of {DOC_FILES:?} (docs drift)"),
            );
        }
    }
}

/// `(const name, string value, line)` triples from the registry file.
fn registry_consts(file: &SourceFile) -> Vec<(String, String, u32)> {
    let code = &file.code;
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("const") || file.is_test(i) {
            continue;
        }
        let Some(name_tok) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // The HELP table pairs name consts with prose; it is checked
        // by its own coverage pass, not parsed as a name const.
        if name_tok.text == "HELP" {
            continue;
        }
        // Scan to the terminating `;`, grabbing the string value.
        let mut j = i + 2;
        let mut value = None;
        while j < code.len() && !code[j].is_punct(';') {
            if let Some(v) = code[j].str_value() {
                value = Some(v.to_owned());
            }
            j += 1;
        }
        if let Some(v) = value {
            out.push((name_tok.text.clone(), v, code[i].line));
        }
    }
    out
}

/// SCREAMING_SNAKE const names referenced inside the registry's
/// `HELP` table body (`None` when the table is missing).
fn help_table_idents(file: &SourceFile) -> Option<BTreeSet<String>> {
    let code = &file.code;
    for i in 0..code.len() {
        if !code[i].is_ident("const")
            || !code.get(i + 1).is_some_and(|t| t.is_ident("HELP"))
            || file.is_test(i)
        {
            continue;
        }
        let mut idents = BTreeSet::new();
        let mut j = i + 2;
        while j < code.len() && !code[j].is_punct(';') {
            let t = &code[j];
            if t.kind == TokKind::Ident
                && t.text.len() > 1
                && t.text
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            {
                idents.insert(t.text.clone());
            }
            j += 1;
        }
        return Some(idents);
    }
    None
}

/// Literal metric names at instrumentation sites in one file:
/// `(line, resolved metric name, site description)`.
fn literal_sites(file: &SourceFile) -> Vec<(u32, String, &'static str)> {
    let code = &file.code;
    let mut out = Vec::new();
    for i in 0..code.len() {
        if file.is_test(i) {
            continue;
        }
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Macros: name ! ( "literal"
        let macro_site = code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('));
        if macro_site {
            if let Some(lit) = code.get(i + 3).and_then(|a| a.str_value()) {
                match t.text.as_str() {
                    "counter" => out.push((t.line, lit.to_owned(), "counter!")),
                    "observe" => out.push((t.line, lit.to_owned(), "observe!")),
                    "timer" => out.push((t.line, lit.to_owned(), "timer!")),
                    "span" => out.push((t.line, format!("stage_{lit}_seconds"), "span!")),
                    _ => {}
                }
            }
            continue;
        }
        // Functions: gauge_set("literal", …) / gauge_max("literal", …)
        if matches!(t.text.as_str(), "gauge_set" | "gauge_max")
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(lit) = code.get(i + 2).and_then(|a| a.str_value()) {
                out.push((t.line, lit.to_owned(), "gauge"));
            }
        }
    }
    out
}

/// Finds `enum DecisionEvent { … }` anywhere in the workspace and
/// returns (defining file rel_path, [(variant, line)]).
fn decision_event_variants(ws: &Workspace) -> Option<(String, Vec<(String, u32)>)> {
    for krate in &ws.crates {
        for file in &krate.files {
            let code = &file.code;
            for i in 0..code.len() {
                if !(code[i].is_ident("enum")
                    && code.get(i + 1).is_some_and(|t| t.is_ident("DecisionEvent")))
                {
                    continue;
                }
                // Find the enum body braces.
                let open = (i + 2..code.len()).find(|&j| code[j].is_punct('{'))?;
                let mut depth = 0i32;
                let mut variants = Vec::new();
                let mut j = open;
                while j < code.len() {
                    if code[j].is_punct('{') {
                        depth += 1;
                    } else if code[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if depth == 1
                        && code[j].kind == TokKind::Ident
                        && code[j]
                            .text
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_uppercase())
                    {
                        let next_is_sep = code
                            .get(j + 1)
                            .is_some_and(|n| n.is_punct('{') || n.is_punct('(') || n.is_punct(','));
                        // Skip attribute contents like #[derive(Debug)].
                        let prev_is_attr =
                            j >= 1 && (code[j - 1].is_punct('[') || code[j - 1].is_punct('('));
                        if next_is_sep && !prev_is_attr {
                            variants.push((code[j].text.clone(), code[j].line));
                        }
                    }
                    j += 1;
                }
                if !variants.is_empty() {
                    return Some((file.rel_path.clone(), variants));
                }
            }
        }
    }
    None
}

/// `[a-z_][a-z0-9_]*`, at least one underscore (metric-shaped).
fn is_prometheus_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Backtick-quoted tokens in markdown that look like metric names:
/// `(1-based line, token)`.
fn backtick_metric_tokens(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        // Odd-indexed split segments are inside backticks.
        for (idx, seg) in line.split('`').enumerate() {
            if idx % 2 == 1 && looks_like_metric(seg) {
                out.push((ln as u32 + 1, seg.to_owned()));
            }
        }
    }
    out
}

/// Heuristic for "this doc token claims to be one of our metrics".
fn looks_like_metric(s: &str) -> bool {
    is_prometheus_name(s)
        && s.contains('_')
        && (s.ends_with("_total")
            || s.ends_with("_seconds")
            || s.ends_with("_highwater")
            || s.starts_with("stage_"))
}
