//! The rule catalogue. Each rule is a function over the analyzed
//! [`Workspace`] appending [`Finding`]s to the report; waiver matching
//! and accounting is centralized in [`emit`].

mod atomic_ordering;
pub mod concurrency;
mod determinism;
mod feature_gate;
mod hot_path;
mod lock_across_io;
mod lock_order;
mod metric_names;
mod panic_hygiene;
mod thread_lifecycle;

pub use atomic_ordering::check as atomic_ordering;
pub use determinism::check as determinism;
pub use feature_gate::check as feature_gate;
pub use hot_path::check as hot_path;
pub use lock_across_io::check as lock_across_io;
pub use lock_order::check as lock_order;
pub use metric_names::check as metric_names;
pub use panic_hygiene::check as panic_hygiene;
pub use thread_lifecycle::check as thread_lifecycle;

use crate::report::{Finding, Report, WaivedFinding};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Tracks which waivers suppressed something, for unused-waiver drift.
#[derive(Default)]
pub struct WaiverLedger {
    used: BTreeSet<(String, usize)>,
}

impl WaiverLedger {
    /// `true` when the waiver at `(file, index)` suppressed a finding.
    pub fn was_used(&self, file: &str, index: usize) -> bool {
        self.used.contains(&(file.to_owned(), index))
    }
}

/// Records a finding, routing it through any matching inline waiver.
pub fn emit(
    report: &mut Report,
    ledger: &mut WaiverLedger,
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) {
    let finding = Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
    };
    match file.waiver_for(rule, line) {
        Some(idx) => {
            ledger.used.insert((file.rel_path.clone(), idx));
            report.waived.push(WaivedFinding {
                reason: file.waivers[idx].reason.clone(),
                finding,
            });
        }
        None => report.findings.push(finding),
    }
}

/// Records a finding that can never be waived (meta/syntax errors).
pub fn emit_unwaivable(
    report: &mut Report,
    rule: &'static str,
    file: &str,
    line: u32,
    message: String,
) {
    report.findings.push(Finding {
        rule,
        file: file.to_owned(),
        line,
        message,
    });
}

/// Matches `needle` as a token sequence at position `i` of `toks`,
/// where each needle element is either an identifier (`"ident"`) or a
/// single punctuation character (`"("`).
pub fn seq_at(toks: &[crate::lexer::Tok], i: usize, needle: &[&str]) -> bool {
    if i + needle.len() > toks.len() {
        return false;
    }
    needle.iter().enumerate().all(|(k, &pat)| {
        let t = &toks[i + k];
        if pat.len() == 1
            && !pat
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            t.is_punct(pat.chars().next().unwrap_or(' '))
        } else {
            t.is_ident(pat)
        }
    })
}
