//! Shared lexical machinery for the concurrency rules: guard
//! detection (`.lock()` / `.read()` / `.write()`), guard scopes,
//! textual lock identity, and the blocking-I/O marker table.
//!
//! Lock identity is the normalized receiver text (`self.inner`,
//! `registry().gauges`, `STATE`), with `self.*` receivers qualified by
//! file (`hub.rs::self.inner`) so same-named fields of different types
//! stay distinct. This is best-effort textual identity: two locals
//! with the same name in different functions alias, and one lock
//! reached through two differently-named bindings splits — both
//! degrade to noise a waiver can absorb, never to silent misses of
//! the patterns this workspace actually writes.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// What flavor of guard an acquisition produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// `.lock()` on a `Mutex`.
    Mutex,
    /// `.read()` on a `RwLock`.
    RwRead,
    /// `.write()` on a `RwLock`.
    RwWrite,
}

impl GuardKind {
    /// The method name, for messages.
    pub fn method(self) -> &'static str {
        match self {
            GuardKind::Mutex => "lock()",
            GuardKind::RwRead => "read()",
            GuardKind::RwWrite => "write()",
        }
    }
}

/// One guard acquisition and the token range it is held over.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Normalized lock identity (see module docs).
    pub lock_id: String,
    /// Mutex / RwLock-read / RwLock-write.
    pub kind: GuardKind,
    /// Code-token index of the `.` starting the acquisition call.
    pub acq_tok: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Token range `(start, end)` the guard is live over, exclusive
    /// of the acquisition itself.
    pub scope: (usize, usize),
}

/// Finds guard acquisitions in `body` and computes their held scopes.
///
/// Scope policy (lexical): a `let`-bound guard lives to the end of its
/// enclosing block, truncated at an explicit `drop(binding)`; a guard
/// bound by `if let` / `while let` lives to the end of the construct's
/// block; an expression temporary lives to the end of its statement.
pub fn find_guards(file: &SourceFile, body: (usize, usize)) -> Vec<Guard> {
    let code = &file.code;
    let end = body.1.min(code.len());
    let mut out = Vec::new();
    let mut i = body.0;
    while i < end {
        let kind = if seq(code, i, &[".", "lock", "(", ")"]) {
            Some(GuardKind::Mutex)
        } else if seq(code, i, &[".", "read", "(", ")"]) {
            Some(GuardKind::RwRead)
        } else if seq(code, i, &[".", "write", "(", ")"]) {
            Some(GuardKind::RwWrite)
        } else {
            None
        };
        let Some(kind) = kind else {
            i += 1;
            continue;
        };
        let recv_start = receiver_start(code, i, body.0);
        let mut lock_id = render(code, recv_start, i);
        if lock_id.is_empty() {
            lock_id = "<expr>".to_owned();
        }
        // `stdout().lock()` & friends return stream handle locks, not
        // sync primitives: holding one across I/O is the whole point
        // (batched writes), and only this thread's prints wait on it.
        if lock_id.ends_with("stdout()")
            || lock_id.ends_with("stderr()")
            || lock_id.ends_with("stdin()")
        {
            i += 1;
            continue;
        }
        if lock_id == "self" || lock_id.starts_with("self.") {
            let stem = file
                .rel_path
                .rsplit('/')
                .next()
                .unwrap_or(file.rel_path.as_str());
            lock_id = format!("{stem}::{lock_id}");
        }
        let stmt = stmt_start(code, recv_start, body.0);
        let after_call = i + 4; // past `. lock ( )`
        let scope_end = if code[stmt].is_ident("let")
            || ((code[stmt].is_ident("if") || code[stmt].is_ident("while"))
                && code.get(stmt + 1).is_some_and(|t| t.is_ident("let")))
        {
            let base = if code[stmt].is_ident("let") {
                enclosing_block_end(code, after_call, end)
            } else {
                // `if let Ok(g) = m.lock() { … }`: held over the
                // construct's first block only.
                first_block_end(code, after_call, end)
            };
            let binding = binding_name(code, stmt, i);
            match binding.and_then(|b| find_drop(code, after_call, base, &b)) {
                Some(d) => d,
                None => base,
            }
        } else {
            stmt_end(code, after_call, end)
        };
        out.push(Guard {
            lock_id,
            kind,
            acq_tok: i,
            line: code[i].line,
            scope: (after_call, scope_end),
        });
        i += 4;
    }
    out
}

/// Matches `needle` (idents / single punct chars) at `i`.
fn seq(code: &[Tok], i: usize, needle: &[&str]) -> bool {
    super::seq_at(code, i, needle)
}

/// Start of the receiver chain ending at the `.` token `dot`
/// (`registry().gauges.lock()` → index of `registry`).
fn receiver_start(code: &[Tok], dot: usize, floor: usize) -> usize {
    let mut chain_start = dot;
    let mut pos = dot;
    while let Some(mut p) = pos.checked_sub(1) {
        if p < floor {
            break;
        }
        if code[p].is_punct(')') {
            // A call component `name(…)`: skip to its open paren.
            let mut depth = 0i32;
            let mut k = p;
            let mut open = None;
            loop {
                if code[k].is_punct(')') {
                    depth += 1;
                } else if code[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(k);
                        break;
                    }
                }
                if k <= floor {
                    break;
                }
                k -= 1;
            }
            let Some(open) = open else { break };
            if open <= floor || code[open - 1].kind != TokKind::Ident {
                break;
            }
            p = open - 1;
        } else if code[p].kind != TokKind::Ident {
            break;
        }
        chain_start = p;
        // Continue through `.` or `::` separators only.
        let Some(s) = p.checked_sub(1) else { break };
        if s >= floor && code[s].is_punct('.') {
            pos = s;
        } else if s > floor && code[s].is_punct(':') && code[s - 1].is_punct(':') {
            pos = s - 1;
        } else {
            break;
        }
    }
    chain_start
}

/// Concatenated token text of `[start, end)` — receiver rendering.
fn render(code: &[Tok], start: usize, end: usize) -> String {
    code[start..end].iter().map(|t| t.text.as_str()).collect()
}

/// First token of the statement containing `i` (walk back to the
/// nearest `;`, `{` or `}`).
pub fn stmt_start(code: &[Tok], i: usize, floor: usize) -> usize {
    let mut j = i;
    while j > floor {
        let t = &code[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    j
}

/// Index just past the end of the enclosing block: the `}` that closes
/// the block `i` sits in (or `end`).
fn enclosing_block_end(code: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        if code[j].is_punct('{') {
            depth += 1;
        } else if code[j].is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
        j += 1;
    }
    end
}

/// End of the first `{ … }` block opening at or after `i`.
fn first_block_end(code: &[Tok], i: usize, end: usize) -> usize {
    let mut j = i;
    while j < end && !code[j].is_punct('{') {
        j += 1;
    }
    let mut depth = 0i32;
    while j < end {
        if code[j].is_punct('{') {
            depth += 1;
        } else if code[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end
}

/// End of the statement containing `i`: the next `;` at brace depth 0.
fn stmt_end(code: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        if code[j].is_punct('{') {
            depth += 1;
        } else if code[j].is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if code[j].is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    end
}

/// The binding name of a `let` / `if let` statement starting at
/// `stmt`: the first lowercase identifier after `let` (skips `mut`
/// and enum constructors like `Ok(`).
fn binding_name(code: &[Tok], stmt: usize, before: usize) -> Option<String> {
    let mut j = stmt;
    while j < before && !code[j].is_ident("let") {
        j += 1;
    }
    code.get(j + 1..before)?
        .iter()
        .take_while(|t| !t.is_punct('='))
        .find(|t| {
            t.kind == TokKind::Ident
                && !t.is_ident("mut")
                && t.text.chars().next().is_some_and(char::is_lowercase)
        })
        .map(|t| t.text.clone())
}

/// Position of `drop(binding)` inside `[from, to)`, if any.
fn find_drop(code: &[Tok], from: usize, to: usize, binding: &str) -> Option<usize> {
    (from..to.min(code.len())).find(|&j| {
        code[j].is_ident("drop")
            && code.get(j + 1).is_some_and(|t| t.is_punct('('))
            && code.get(j + 2).is_some_and(|t| t.is_ident(binding))
            && code.get(j + 3).is_some_and(|t| t.is_punct(')'))
    })
}

/// Checks token `i` for a blocking operation. Returns a short
/// description for the finding message.
///
/// `.read(buf)` / `.write(buf)` (with arguments) are I/O; the
/// zero-argument forms are `RwLock` acquisitions and are left to the
/// guard machinery. `.join()` with no argument is a thread join;
/// `slice::join(sep)` takes one and is skipped.
pub fn blocking_marker(code: &[Tok], i: usize) -> Option<&'static str> {
    const DOT_CALLS: &[(&str, &str)] = &[
        ("read_to_string", "`read_to_string` (stream read)"),
        ("read_to_end", "`read_to_end` (stream read)"),
        ("write_all", "`write_all` (stream write)"),
        ("flush", "`flush` (stream write)"),
        ("recv", "`recv` (channel wait)"),
        ("recv_timeout", "`recv_timeout` (channel wait)"),
        ("accept", "`accept` (socket wait)"),
    ];
    if code[i].is_punct('.') {
        let name = code.get(i + 1)?;
        if !code.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            return None;
        }
        for (m, desc) in DOT_CALLS {
            if name.is_ident(m) {
                return Some(desc);
            }
        }
        let has_args = !code.get(i + 3).is_some_and(|t| t.is_punct(')'));
        if name.is_ident("read") && has_args {
            return Some("`read` (stream read)");
        }
        if name.is_ident("write") && has_args {
            return Some("`write` (stream write)");
        }
        if name.is_ident("join") && !has_args {
            return Some("`join` (thread wait)");
        }
        return None;
    }
    const PATHS: &[(&[&str], &str)] = &[
        (&["thread", ":", ":", "sleep"], "`thread::sleep`"),
        (&["TcpStream", ":", ":", "connect"], "`TcpStream::connect`"),
        (&["File", ":", ":", "open"], "`File::open`"),
        (&["File", ":", ":", "create"], "`File::create`"),
        (&["fs", ":", ":", "read_to_string"], "`fs::read_to_string`"),
        (&["fs", ":", ":", "read"], "`fs::read`"),
        (&["fs", ":", ":", "write"], "`fs::write`"),
        (&["fs", ":", ":", "create_dir_all"], "`fs::create_dir_all`"),
        (&["fs", ":", ":", "remove_file"], "`fs::remove_file`"),
        (&["fs", ":", ":", "rename"], "`fs::rename`"),
    ];
    for (needle, desc) in PATHS {
        if seq(code, i, needle) {
            return Some(desc);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileRole;
    use std::path::PathBuf;

    fn file(src: &str) -> SourceFile {
        SourceFile::analyze("x.rs".into(), PathBuf::from("/x.rs"), FileRole::Src, src)
    }

    fn guards(src: &str) -> (SourceFile, Vec<Guard>) {
        let f = file(src);
        let body = f.fns[0].body;
        let gs = find_guards(&f, body);
        (f, gs)
    }

    #[test]
    fn std_stream_handle_locks_are_not_guards() {
        let (_, gs) = guards("fn f() { let mut out = std::io::stdout().lock(); }\n");
        assert!(
            gs.is_empty(),
            "stdout().lock() is a stream handle, not a mutex"
        );
        let (_, gs) = guards("fn f() { let e = std::io::stderr().lock(); }\n");
        assert!(gs.is_empty());
    }

    #[test]
    fn let_bound_guard_spans_enclosing_block() {
        let (f, gs) = guards("fn f() { let g = STATE.lock().unwrap(); touch(); }\n");
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].lock_id, "STATE");
        assert_eq!(gs[0].kind, GuardKind::Mutex);
        let touch = f.code.iter().position(|t| t.is_ident("touch")).unwrap();
        assert!(gs[0].scope.0 <= touch && touch < gs[0].scope.1);
    }

    #[test]
    fn drop_truncates_scope() {
        let (f, gs) = guards("fn f() { let g = M.lock().unwrap(); drop(g); late(); }\n");
        let late = f.code.iter().position(|t| t.is_ident("late")).unwrap();
        assert!(late >= gs[0].scope.1, "drop(g) must end the guard scope");
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let (f, gs) = guards("fn f() { M.lock().unwrap().push(1); after(); }\n");
        let after = f.code.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(after >= gs[0].scope.1);
    }

    #[test]
    fn self_receivers_are_file_qualified() {
        let (_, gs) = guards("fn f(&self) { let g = self.inner.lock().unwrap(); }\n");
        assert_eq!(gs[0].lock_id, "x.rs::self.inner");
    }

    #[test]
    fn call_receivers_render_with_parens() {
        let (_, gs) = guards("fn f() { let g = registry().gauges.lock().unwrap(); }\n");
        assert_eq!(gs[0].lock_id, "registry().gauges");
    }

    #[test]
    fn rwlock_read_write_detected_io_read_not() {
        let (_, gs) = guards("fn f(s: &mut TcpStream, buf: &mut [u8]) { let g = RW.read().unwrap(); s.read(buf).ok(); let w = RW.write().unwrap(); }\n");
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].kind, GuardKind::RwRead);
        assert_eq!(gs[1].kind, GuardKind::RwWrite);
    }

    #[test]
    fn if_let_guard_scope_is_the_block() {
        let (f, gs) = guards("fn f() { if let Ok(g) = M.lock() { inside(); } outside(); }\n");
        assert_eq!(gs.len(), 1);
        let inside = f.code.iter().position(|t| t.is_ident("inside")).unwrap();
        let outside = f.code.iter().position(|t| t.is_ident("outside")).unwrap();
        assert!(inside < gs[0].scope.1);
        assert!(outside >= gs[0].scope.1);
    }

    #[test]
    fn blocking_markers_classify_read_write_arity() {
        let f = file("fn f(s: &mut TcpStream, b: &[u8]) { s.write(b); s.write_all(b); rx.recv(); h.join(); v.join(\",\"); }\n");
        let hits: Vec<&str> = (0..f.code.len())
            .filter_map(|i| blocking_marker(&f.code, i))
            .collect();
        assert_eq!(
            hits,
            vec![
                "`write` (stream write)",
                "`write_all` (stream write)",
                "`recv` (channel wait)",
                "`join` (thread wait)",
            ]
        );
    }
}
