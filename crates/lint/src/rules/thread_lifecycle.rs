//! L9 `thread-lifecycle`: every `thread::spawn` in library code must
//! have a reachable join-or-shutdown path. A discarded `JoinHandle`
//! cannot be joined at all; a kept handle needs a `.join()` somewhere
//! in the spawning file or in code confidently reachable from it
//! (serve's worker pool joins in `shutdown()`, the sampler joins in
//! `stop()` — both in-file). Detached threads leak across test
//! processes and wedge orderly daemon shutdown, which is exactly the
//! always-on failure mode NetMaster cannot afford.
//!
//! Known false-negative class (documented, accepted): a join performed
//! in a *different* crate, through a trait object, or via a
//! std-colliding method name is not seen and would need a waiver on
//! the spawn instead.

use super::concurrency::stmt_start;
use super::{emit, WaiverLedger};
use crate::callgraph::CallGraph;
use crate::config::LintConfig;
use crate::report::Report;
use crate::source::{FileRole, SourceFile};
use crate::workspace::Workspace;

const RULE: &str = "thread-lifecycle";

/// Runs L9 over non-test `src/` code.
pub fn check(
    ws: &Workspace,
    graph: &CallGraph,
    _cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    for (ki, krate) in ws.crates.iter().enumerate() {
        for (fi, file) in krate.files.iter().enumerate() {
            if file.role != FileRole::Src {
                continue;
            }
            let code = &file.code;
            for i in 0..code.len() {
                if file.is_test(i) || !seq(code, i, &["thread", ":", ":", "spawn", "("]) {
                    continue;
                }
                let line = code[i].line;
                let Some(close) = matching_paren(code, i + 4) else {
                    continue;
                };
                let after = code.get(close + 1);
                let stmt = stmt_start(code, i, 0);
                let let_bound = code[stmt].is_ident("let");
                let discarded = match after {
                    // `thread::spawn(…);` as a bare statement, or
                    // `let _ = thread::spawn(…);`.
                    Some(t) if t.is_punct(';') => {
                        !let_bound || code.get(stmt + 1).is_some_and(|t| t.is_punct('_'))
                    }
                    // Passed along (`workers.push(spawn(…))`), chained
                    // (`spawn(…).join()`), or returned — the handle
                    // survives.
                    _ => false,
                };
                if discarded {
                    emit(
                        report,
                        ledger,
                        file,
                        RULE,
                        line,
                        "the JoinHandle from `thread::spawn` is discarded — the thread can \
                         never be joined; keep the handle and join it on the shutdown path"
                            .to_owned(),
                    );
                } else if !join_reachable(ws, graph, file, (ki, fi)) {
                    emit(
                        report,
                        ledger,
                        file,
                        RULE,
                        line,
                        "no `.join()` is reachable from this file for the thread spawned here \
                         — wire the handle into a join-or-shutdown path"
                            .to_owned(),
                    );
                }
            }
        }
    }
}

/// `true` when a thread join (`.join()`, no arguments) exists in this
/// file's non-test code or in any function confidently reachable from
/// this file's functions.
fn join_reachable(
    ws: &Workspace,
    graph: &CallGraph,
    file: &SourceFile,
    loc: (usize, usize),
) -> bool {
    if has_join(file) {
        return true;
    }
    let seeds: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.loc == loc)
        .map(|(id, _)| id)
        .collect();
    let (seen, _) = graph.reachable(&seeds);
    graph
        .fns
        .iter()
        .enumerate()
        .any(|(id, f)| seen[id] && f.loc != loc && has_join(&ws.crates[f.loc.0].files[f.loc.1]))
}

/// Does the file contain a zero-argument `.join()` outside tests?
fn has_join(file: &SourceFile) -> bool {
    let code = &file.code;
    (0..code.len()).any(|i| !file.is_test(i) && seq(code, i, &[".", "join", "(", ")"]))
}

fn seq(code: &[crate::lexer::Tok], i: usize, needle: &[&str]) -> bool {
    super::seq_at(code, i, needle)
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(code: &[crate::lexer::Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}
