//! L5 `determinism`: simulation and solver crates must stay
//! reproducible — no wall-clock or entropy sources outside the obs
//! timing layer and the bench harness. Seeded RNG (`StdRng::seed_from_u64`)
//! is the only sanctioned randomness.

use super::{emit, seq_at, WaiverLedger};
use crate::config::LintConfig;
use crate::report::Report;
use crate::source::FileRole;
use crate::workspace::Workspace;

const RULE: &str = "determinism";

/// Crates allowed to read clocks/entropy: the obs layer owns timers,
/// and the bench harness measures wall time by definition.
const EXEMPT_CRATES: &[&str] = &["netmaster-obs", "netmaster-bench"];

const BANNED: &[(&[&str], &str)] = &[
    (
        &["SystemTime", ":", ":", "now"],
        "`SystemTime::now` makes runs time-dependent",
    ),
    (
        &["Instant", ":", ":", "now"],
        "`Instant::now` belongs in the obs timers / bench harness",
    ),
    (
        &["thread_rng"],
        "`thread_rng` is unseeded; use `StdRng::seed_from_u64`",
    ),
    (
        &["from_entropy"],
        "`from_entropy` is unseeded; use `StdRng::seed_from_u64`",
    ),
    (
        &["rand", ":", ":", "random"],
        "`rand::random` is unseeded; use `StdRng::seed_from_u64`",
    ),
];

/// Runs L5 over non-test library source of non-exempt crates.
pub fn check(
    ws: &Workspace,
    _graph: &crate::callgraph::CallGraph,
    _cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    for krate in &ws.crates {
        if EXEMPT_CRATES.contains(&krate.name.as_str()) {
            continue;
        }
        for file in &krate.files {
            if file.role != FileRole::Src {
                continue;
            }
            for i in 0..file.code.len() {
                if file.is_test(i) {
                    continue;
                }
                for (needle, why) in BANNED {
                    if seq_at(&file.code, i, needle) {
                        emit(
                            report,
                            ledger,
                            file,
                            RULE,
                            file.code[i].line,
                            format!("{} (crate `{}`)", why, krate.name),
                        );
                        break;
                    }
                }
            }
        }
    }
}
