//! L6 `lock-order`: builds the workspace lock-acquisition graph from
//! guard scopes (directly nested acquisitions plus acquisitions
//! reached through confident call edges) and reports every cycle as a
//! potential deadlock. The serve worker pool + hub + store trio is the
//! audit target: any two threads taking the same pair of locks in
//! opposite orders can wedge the whole telemetry plane.
//!
//! A same-lock nested acquisition is reported directly: `std::sync`
//! locks are not reentrant, so `lock()` under its own guard is a
//! guaranteed self-deadlock (for `RwLock`, read-under-read still
//! deadlocks once a writer queues between the two).

use super::concurrency::{find_guards, Guard};
use super::{emit, WaiverLedger};
use crate::callgraph::{calls_in_range, CallGraph};
use crate::config::LintConfig;
use crate::report::Report;
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

const RULE: &str = "lock-order";

/// One lock-order edge `from → to` with its witness site.
struct OrderEdge {
    /// (crate idx, file idx) of the witness site.
    loc: (usize, usize),
    /// 1-based line of the witness site.
    line: u32,
    /// How the second lock is reached (`directly` / `via call to …`).
    how: String,
}

/// Runs L6 over every non-test `src/` function.
pub fn check(
    ws: &Workspace,
    graph: &CallGraph,
    _cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    // Guards per function, then the transitive set of locks each
    // function acquires (confident call edges only).
    let mut guards: Vec<Vec<Guard>> = Vec::with_capacity(graph.fns.len());
    for node in &graph.fns {
        let file = &ws.crates[node.loc.0].files[node.loc.1];
        guards.push(find_guards(file, node.body));
    }
    let acquired = transitive_locks(graph, &guards);

    // Edge map `from → to`, first witness wins (stable reporting).
    let mut edges: BTreeMap<(String, String), OrderEdge> = BTreeMap::new();
    for (fid, node) in graph.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let file = &ws.crates[node.loc.0].files[node.loc.1];
        for g in &guards[fid] {
            // Directly nested acquisitions inside this guard's scope.
            for h in &guards[fid] {
                if h.acq_tok <= g.acq_tok || h.acq_tok >= g.scope.1 {
                    continue;
                }
                if h.lock_id == g.lock_id {
                    emit(
                        report,
                        ledger,
                        file,
                        RULE,
                        h.line,
                        format!(
                            "`{}` re-acquired via {} while its guard from line {} is still held — \
                             std locks are not reentrant, this self-deadlocks",
                            h.lock_id,
                            h.kind.method(),
                            g.line
                        ),
                    );
                } else {
                    edges
                        .entry((g.lock_id.clone(), h.lock_id.clone()))
                        .or_insert(OrderEdge {
                            loc: node.loc,
                            line: h.line,
                            how: "acquired directly".to_owned(),
                        });
                }
            }
            // Acquisitions reached through calls made under the guard.
            for e in calls_in_range(graph, fid, g.scope) {
                for l in &acquired[e.callee] {
                    if *l == g.lock_id {
                        emit(
                            report,
                            ledger,
                            file,
                            RULE,
                            e.line,
                            format!(
                                "call to `{}` (re)acquires `{}` while its guard from line {} is \
                                 still held — std locks are not reentrant, this self-deadlocks",
                                graph.fns[e.callee].name, l, g.line
                            ),
                        );
                    } else {
                        edges
                            .entry((g.lock_id.clone(), l.clone()))
                            .or_insert(OrderEdge {
                                loc: node.loc,
                                line: e.line,
                                how: format!("via call to `{}`", graph.fns[e.callee].name),
                            });
                    }
                }
            }
        }
    }

    // Cycle detection over the lock-order digraph. Each cycle is one
    // finding, anchored at its first edge's witness site, with every
    // edge's site spelled out for triage.
    for cycle in find_cycles(&edges) {
        let key = (cycle[0].clone(), cycle[1 % cycle.len()].clone());
        let Some(w) = edges.get(&key) else { continue };
        let file = &ws.crates[w.loc.0].files[w.loc.1];
        let mut ring = cycle.clone();
        ring.push(cycle[0].clone());
        let legs: Vec<String> = (0..cycle.len())
            .filter_map(|k| {
                let from = &cycle[k];
                let to = &cycle[(k + 1) % cycle.len()];
                edges.get(&(from.clone(), to.clone())).map(|e| {
                    let f = &ws.crates[e.loc.0].files[e.loc.1];
                    format!("`{from}` → `{to}` {} at {}:{}", e.how, f.rel_path, e.line)
                })
            })
            .collect();
        emit(
            report,
            ledger,
            file,
            RULE,
            w.line,
            format!(
                "potential deadlock: lock-order cycle {} ({}) — make every thread take \
                 these locks in one global order",
                ring.join(" → "),
                legs.join("; ")
            ),
        );
    }
}

/// Per-function set of lock ids acquired directly or through
/// confident call edges (fixpoint union).
fn transitive_locks(graph: &CallGraph, guards: &[Vec<Guard>]) -> Vec<BTreeSet<String>> {
    let mut acq: Vec<BTreeSet<String>> = guards
        .iter()
        .map(|gs| gs.iter().map(|g| g.lock_id.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for fid in 0..graph.fns.len() {
            for e in &graph.edges[fid] {
                if !e.confident {
                    continue;
                }
                let add: Vec<String> = acq[e.callee]
                    .iter()
                    .filter(|l| !acq[fid].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    acq[fid].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            return acq;
        }
    }
}

/// Every elementary cycle's node list, canonicalized (rotated to the
/// minimum node) and deduplicated. DFS with back-edge extraction is
/// enough at this graph size (a handful of locks).
fn find_cycles(edges: &BTreeMap<(String, String), OrderEdge>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    let mut out: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys() {
        // DFS from each node; record cycles that return to `start`.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        while let Some((node, next)) = stack.last_mut() {
            let succs = &adj[*node];
            if *next >= succs.len() {
                on_path.remove(*node);
                path.pop();
                stack.pop();
                continue;
            }
            let s = succs[*next];
            *next += 1;
            if s == start {
                out.insert(canonical(&path));
            } else if !on_path.contains(s) {
                on_path.insert(s);
                path.push(s);
                stack.push((s, 0));
            }
        }
    }
    out.into_iter().collect()
}

/// Rotates a cycle's node list so the smallest node comes first.
fn canonical(path: &[&str]) -> Vec<String> {
    let min = path
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| **s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    path.iter()
        .cycle()
        .skip(min)
        .take(path.len())
        .map(|s| (*s).to_owned())
        .collect()
}
