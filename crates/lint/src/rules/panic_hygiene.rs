//! L4 `panic-hygiene`: library crates must not panic on degenerate
//! fleet inputs — no `unwrap`/`expect`/`panic!`/`todo!` outside tests.
//! Sites with a genuine invariant argument carry a
//! `// lint:allow(panic-hygiene) <reason>` waiver instead.
//!
//! The slice-index sub-check (`xs[i]` without `.get`) is behind the
//! `index-guard` option, off by default: the codebase indexes fixed
//! `[f64; 24]` hourly arrays pervasively and a lexical ban would drown
//! the signal. Fixtures and stricter configs turn it on.

use super::{emit, seq_at, WaiverLedger};
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::report::Report;
use crate::source::FileRole;
use crate::workspace::Workspace;

const RULE: &str = "panic-hygiene";

/// The bench harness is exempt: it is a measurement binary whose error
/// strategy is to abort loudly on IO/setup failure.
const EXEMPT_CRATES: &[&str] = &["netmaster-bench"];

const BANNED: &[(&[&str], &str)] = &[
    (&[".", "unwrap", "("], "`unwrap()` panics on the error path"),
    (&[".", "expect", "("], "`expect()` panics on the error path"),
    (&["panic", "!"], "`panic!` in library code"),
    (&["todo", "!"], "`todo!` must not ship"),
    (&["unimplemented", "!"], "`unimplemented!` must not ship"),
];

/// Runs L4 over non-test library source.
pub fn check(
    ws: &Workspace,
    _graph: &crate::callgraph::CallGraph,
    cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    for krate in &ws.crates {
        if EXEMPT_CRATES.contains(&krate.name.as_str()) {
            continue;
        }
        for file in &krate.files {
            if file.role != FileRole::Src {
                continue;
            }
            for i in 0..file.code.len() {
                if file.is_test(i) {
                    continue;
                }
                for (needle, why) in BANNED {
                    if seq_at(&file.code, i, needle) {
                        emit(
                            report,
                            ledger,
                            file,
                            RULE,
                            file.code[i].line,
                            format!("{} (crate `{}`)", why, krate.name),
                        );
                        break;
                    }
                }
                if cfg.index_guard && is_index_expr(file, i) {
                    emit(
                        report,
                        ledger,
                        file,
                        RULE,
                        file.code[i].line,
                        "slice index without `.get` can panic out of bounds".to_owned(),
                    );
                }
            }
        }
    }
}

/// `xs[…]` / `f()[…]`: a `[` whose previous code token could be an
/// indexable expression. Type positions (`: [f64; 24]`), slices
/// (`&[…]`), attributes (`#[…]`), and macros (`vec![…]`) all have a
/// non-expression token before the bracket and are not flagged.
fn is_index_expr(file: &crate::source::SourceFile, i: usize) -> bool {
    if !file.code[i].is_punct('[') || i == 0 {
        return false;
    }
    let prev = &file.code[i - 1];
    match prev.kind {
        TokKind::Ident => !matches!(
            prev.text.as_str(),
            "in" | "mut"
                | "return"
                | "if"
                | "else"
                | "match"
                | "let"
                | "as"
                | "ref"
                | "move"
                | "break"
                | "where"
                | "dyn"
                | "impl"
        ),
        TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    }
}
