//! L8 `atomic-ordering`: a `store(…, Ordering::Relaxed)` /
//! `load(Ordering::Relaxed)` pair carries no happens-before edge, so
//! any non-atomic data "published" around it is a data race waiting
//! for a weaker memory model. Every Relaxed store/load in library code
//! must either upgrade to a Release/Acquire pairing or carry a waiver
//! stating the invariant that makes Relaxed sufficient (pure
//! statistical counter, value protected by an adjacent lock, …).
//!
//! Read-modify-write counters (`fetch_add` & friends) are exempt by
//! construction: they are the idiomatic Relaxed use this workspace's
//! sharded registry is built on. `netmaster-bench` is exempt as a
//! measurement harness.

use super::{emit, WaiverLedger};
use crate::callgraph::CallGraph;
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::report::Report;
use crate::source::FileRole;
use crate::workspace::Workspace;

const RULE: &str = "atomic-ordering";

/// Crates exempt from L8.
const EXEMPT_CRATES: &[&str] = &["netmaster-bench"];

/// Runs L8 over non-test `src/` code.
pub fn check(
    ws: &Workspace,
    _graph: &CallGraph,
    _cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    for krate in &ws.crates {
        if EXEMPT_CRATES.contains(&krate.name.as_str()) {
            continue;
        }
        for file in &krate.files {
            if file.role != FileRole::Src {
                continue;
            }
            let code = &file.code;
            for i in 0..code.len() {
                if file.is_test(i) {
                    continue;
                }
                let op = if seq(code, i, &[".", "store", "("]) {
                    "store"
                } else if seq(code, i, &[".", "load", "("]) {
                    "load"
                } else {
                    continue;
                };
                let Some(close) = matching_paren(code, i + 2) else {
                    continue;
                };
                if code[i + 3..close].iter().any(|t| t.is_ident("Relaxed")) {
                    let advice = if op == "store" {
                        "pair it as `Ordering::Release` with an `Acquire` load"
                    } else {
                        "pair it as `Ordering::Acquire` with a `Release` store"
                    };
                    emit(
                        report,
                        ledger,
                        file,
                        RULE,
                        code[i].line,
                        format!(
                            "`{op}(Ordering::Relaxed)` has no happens-before edge — if this \
                             publishes or observes non-atomic data, {advice}; if Relaxed is \
                             sufficient, waive with the invariant that makes it so"
                        ),
                    );
                }
            }
        }
    }
}

fn seq(code: &[crate::lexer::Tok], i: usize, needle: &[&str]) -> bool {
    super::seq_at(code, i, needle)
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(code: &[crate::lexer::Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}
