//! L2 `feature-gate`: obs feature hygiene, in two halves.
//!
//! Manifest half — the workspace's no-op observability story only
//! works if every crate wires the `obs` feature the same way:
//! consumers depend on obs-forwarding crates with
//! `default-features = false` and forward `obs = ["netmaster-obs/enabled",
//! "<dep>/obs", …]`; a crate whose *source* gates on
//! `#[cfg(feature = "obs")]` must declare that feature.
//!
//! Source half — the macro layer (`counter!`, `span!`, …) is
//! deliberately safe to call ungated (it expands to no-ops when obs is
//! compiled out), but the *scrape/control* API
//! (`snapshot`/`reset`/`set_runtime_enabled`/…) and obs-only modules
//! (`watchtower`) are not: library crates must gate those behind
//! `#[cfg(feature = "obs")]` or tests. Binaries (cli, bench) own their
//! empty-snapshot behavior and are exempt from the scrape check.

use super::{emit, emit_unwaivable, WaiverLedger};
use crate::config::LintConfig;
use crate::report::Report;
use crate::source::FileRole;
use crate::workspace::Workspace;
use std::collections::BTreeSet;

const RULE: &str = "feature-gate";

/// Registry scrape/control APIs that must never run ungated in library
/// crates (they touch or render global obs state).
const SCRAPE_APIS: &[&str] = &[
    "snapshot",
    "reset",
    "set_runtime_enabled",
    "to_jsonl",
    "parse_jsonl",
    "to_prometheus",
    "validate_prometheus",
];

/// Modules that only exist under the obs feature.
const OBS_ONLY_MODULES: &[&str] = &["watchtower"];

/// Crates exempt from the source-side scrape check: obs defines the
/// APIs; cli/bench are binaries whose ungated scrape calls are the
/// documented empty-snapshot behavior.
const SCRAPE_EXEMPT: &[&str] = &["netmaster-obs", "netmaster-cli", "netmaster-bench"];

/// Runs L2 over manifests and library source.
pub fn check(
    ws: &Workspace,
    _graph: &crate::callgraph::CallGraph,
    _cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    // Crates that expose an `obs` feature (forwarders) — depending on
    // one of these without default-features = false force-enables obs.
    let forwarders: BTreeSet<&str> = ws
        .crates
        .iter()
        .filter(|c| c.manifest.features.contains_key("obs"))
        .map(|c| c.name.as_str())
        .collect();

    for krate in &ws.crates {
        let manifest_path = if krate.rel_dir.is_empty() {
            "Cargo.toml".to_owned()
        } else {
            format!("{}/Cargo.toml", krate.rel_dir)
        };
        let obs_feature = krate.manifest.features.get("obs");

        if krate.name != "netmaster-obs" {
            // Dep hygiene + forwarding completeness.
            for (dep, entry) in &krate.manifest.deps {
                let is_obs_dep = dep == "netmaster-obs" || forwarders.contains(dep.as_str());
                if !is_obs_dep {
                    continue;
                }
                if !entry.default_features_off {
                    emit_unwaivable(
                        report,
                        RULE,
                        &manifest_path,
                        0,
                        format!(
                            "dependency `{dep}` needs `default-features = false` — its default \
                             features would force obs on in no-obs builds"
                        ),
                    );
                }
                let forwarded = match obs_feature {
                    Some(list) => {
                        let want = if dep == "netmaster-obs" {
                            format!("{dep}/enabled")
                        } else {
                            format!("{dep}/obs")
                        };
                        list.contains(&want)
                    }
                    None => false,
                };
                if !forwarded {
                    let want = if dep == "netmaster-obs" {
                        "enabled"
                    } else {
                        "obs"
                    };
                    emit_unwaivable(
                        report,
                        RULE,
                        &manifest_path,
                        0,
                        format!(
                            "crate depends on `{dep}` but its `obs` feature does not forward \
                             `{dep}/{want}`"
                        ),
                    );
                }
            }
        }

        // Source gating on a feature the manifest never declares.
        let uses_obs_cfg = krate.files.iter().any(|f| {
            f.file_obs_gated
                || f.mod_decls.iter().any(|(_, _, obs)| *obs)
                || (0..f.code.len()).any(|i| f.is_obs_gated(i))
        });
        if uses_obs_cfg && obs_feature.is_none() && krate.name != "netmaster-obs" {
            emit_unwaivable(
                report,
                RULE,
                &manifest_path,
                0,
                "source gates on `feature = \"obs\"` but Cargo.toml declares no `obs` feature"
                    .to_owned(),
            );
        }

        check_sources(krate, report, ledger);
    }
}

fn check_sources(
    krate: &crate::workspace::CrateInfo,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    let scrape_checked = !SCRAPE_EXEMPT.contains(&krate.name.as_str());
    for file in &krate.files {
        if file.role != FileRole::Src && file.role != FileRole::ExampleDir {
            continue;
        }
        // The obs-only module's own source is allowed to say its name.
        let defines_obs_module = OBS_ONLY_MODULES.iter().any(|m| {
            file.rel_path.ends_with(&format!("{m}.rs")) || file.rel_path.contains(&format!("/{m}/"))
        });

        for i in 0..file.code.len() {
            if file.is_test(i) || file.is_obs_gated(i) {
                continue;
            }
            let t = &file.code[i];
            // `netmaster_obs::<scrape_api>` in library code.
            if scrape_checked
                && file.role == FileRole::Src
                && i >= 3
                && SCRAPE_APIS.iter().any(|a| t.is_ident(a))
                && file.code[i - 1].is_punct(':')
                && file.code[i - 2].is_punct(':')
                && file.code[i - 3].is_ident("netmaster_obs")
            {
                emit(
                    report,
                    ledger,
                    file,
                    RULE,
                    t.line,
                    format!(
                        "`netmaster_obs::{}` touches global obs state — gate it behind \
                         `#[cfg(feature = \"obs\")]` or a test",
                        t.text
                    ),
                );
            }
            // Obs-only module referenced without gating.
            if !defines_obs_module
                && OBS_ONLY_MODULES.iter().any(|m| t.is_ident(m))
                && i >= 1
                && file.code[i - 1].is_punct(':')
            {
                emit(
                    report,
                    ledger,
                    file,
                    RULE,
                    t.line,
                    format!(
                        "`{}` only exists with the obs feature — gate this reference behind \
                         `#[cfg(feature = \"obs\")]`",
                        t.text
                    ),
                );
            }
        }
        // The defining crate must keep the module declaration gated.
        if file.role == FileRole::Src {
            for (name, _test, obs) in &file.mod_decls {
                if OBS_ONLY_MODULES.contains(&name.as_str()) && !obs {
                    emit(
                        report,
                        ledger,
                        file,
                        RULE,
                        0,
                        format!(
                            "`mod {name};` must be declared behind `#[cfg(feature = \"obs\")]`"
                        ),
                    );
                }
            }
        }
    }
}
