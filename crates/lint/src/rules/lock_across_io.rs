//! L7 `lock-across-io`: no guard may be held across blocking I/O —
//! stream reads/writes, channel waits, filesystem calls, thread
//! joins/sleeps. This is PR 7's stated scrape-server invariant
//! (producers must never stall behind a scraper) promoted from review
//! convention to machine check. Blocking calls are matched directly
//! inside guard scopes and transitively through confident call edges
//! (a helper that ends in `write_all` is as blocking as the
//! `write_all` itself).

use super::concurrency::{blocking_marker, find_guards};
use super::{emit, WaiverLedger};
use crate::callgraph::{calls_in_range, CallGraph};
use crate::config::LintConfig;
use crate::report::Report;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

const RULE: &str = "lock-across-io";

/// Runs L7 over every non-test `src/` function.
pub fn check(
    ws: &Workspace,
    graph: &CallGraph,
    _cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    // Per-fn blocking classification: the marker found in the body, or
    // the callee this fn blocks through (fixpoint over confident
    // edges).
    let mut blocking: Vec<Option<String>> = graph
        .fns
        .iter()
        .map(|node| {
            let file = &ws.crates[node.loc.0].files[node.loc.1];
            let (s, e) = node.body;
            (s..e.min(file.code.len()))
                .find_map(|i| blocking_marker(&file.code, i))
                .map(|d| d.to_owned())
        })
        .collect();
    loop {
        let mut changed = false;
        for fid in 0..graph.fns.len() {
            if blocking[fid].is_some() {
                continue;
            }
            for e in &graph.edges[fid] {
                if e.confident {
                    if let Some(inner) = &blocking[e.callee] {
                        blocking[fid] =
                            Some(format!("{} via `{}`", inner, graph.fns[e.callee].name));
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (fid, node) in graph.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let file = &ws.crates[node.loc.0].files[node.loc.1];
        // Findings keyed by site token so nested guard scopes report a
        // blocking call once (innermost guard wins: its lock is the
        // one the fix would narrow).
        let mut sites: BTreeMap<usize, (u32, String)> = BTreeMap::new();
        for g in find_guards(file, node.body) {
            for i in g.scope.0..g.scope.1.min(file.code.len()) {
                if let Some(op) = blocking_marker(&file.code, i) {
                    sites.insert(
                        i,
                        (
                            file.code[i].line,
                            format!(
                                "{op} while the `{}` guard on `{}` is held — blocking I/O \
                                 under a lock stalls every other thread on that lock",
                                g.kind.method(),
                                g.lock_id
                            ),
                        ),
                    );
                }
            }
            for e in calls_in_range(graph, fid, g.scope) {
                if let Some(op) = &blocking[e.callee] {
                    sites.insert(
                        e.tok,
                        (
                            e.line,
                            format!(
                                "call to `{}` blocks ({op}) while the `{}` guard on `{}` is \
                                 held — release the lock before blocking",
                                graph.fns[e.callee].name,
                                g.kind.method(),
                                g.lock_id
                            ),
                        ),
                    );
                }
            }
        }
        for (_tok, (line, msg)) in sites {
            emit(report, ledger, file, RULE, line, msg);
        }
    }
}
