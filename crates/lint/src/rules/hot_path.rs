//! L1 `hot-path-alloc`: no allocation inside functions marked
//! `// lint:hot-path`. These are the scratch-threaded solver paths the
//! perf harness budgets at zero steady-state allocations; a stray
//! `collect()` or `clone()` silently regresses the fleet-scale story.

use super::{emit, seq_at, WaiverLedger};
use crate::config::LintConfig;
use crate::report::Report;
use crate::workspace::Workspace;

const RULE: &str = "hot-path-alloc";

/// (token sequence, what to say about it)
const BANNED: &[(&[&str], &str)] = &[
    (
        &["Vec", ":", ":", "new"],
        "`Vec::new` allocates on first push",
    ),
    (
        &["Vec", ":", ":", "with_capacity"],
        "`Vec::with_capacity` allocates",
    ),
    (&["vec", "!"], "`vec![…]` allocates"),
    (
        &["String", ":", ":", "new"],
        "`String::new` allocates on first push",
    ),
    (&["String", ":", ":", "from"], "`String::from` allocates"),
    (&["Box", ":", ":", "new"], "`Box::new` allocates"),
    (&["format", "!"], "`format!` allocates a fresh String"),
    (&[".", "to_vec", "("], "`.to_vec()` copies into a fresh Vec"),
    (&[".", "to_owned", "("], "`.to_owned()` allocates"),
    (&[".", "to_string", "("], "`.to_string()` allocates"),
    (&[".", "clone", "(", ")"], "`.clone()` deep-copies"),
    (
        &[".", "collect", "("],
        "`.collect()` builds a fresh container",
    ),
];

/// Runs L1 over every hot-path-marked function in the workspace.
pub fn check(ws: &Workspace, _cfg: &LintConfig, report: &mut Report, ledger: &mut WaiverLedger) {
    let mut marked = 0usize;
    for krate in &ws.crates {
        for file in &krate.files {
            for f in file.fns.iter().filter(|f| f.hot_path) {
                marked += 1;
                let (start, end) = f.body;
                let mut i = start;
                while i < end.min(file.code.len()) {
                    for (needle, why) in BANNED {
                        if seq_at(&file.code, i, needle) {
                            emit(
                                report,
                                ledger,
                                file,
                                RULE,
                                file.code[i].line,
                                format!("{} inside hot-path fn `{}`", why, f.name),
                            );
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
    }
    // The markers themselves are load-bearing: if a refactor drops them
    // all, the rule must not silently pass an unmarked workspace.
    if marked == 0 {
        super::emit_unwaivable(
            report,
            RULE,
            "(workspace)",
            0,
            "no `// lint:hot-path` markers found — the solver hot paths must stay marked"
                .to_owned(),
        );
    }
}
