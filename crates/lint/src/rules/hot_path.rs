//! L1 `hot-path-alloc`: no allocation inside functions marked
//! `// lint:hot-path` — nor, since the call-graph layer landed, inside
//! any function **reachable** from a marked one over confident call
//! edges. These are the scratch-threaded solver paths the perf harness
//! budgets at zero steady-state allocations; a stray `collect()` in a
//! helper two calls down regresses the fleet-scale story just as
//! surely as one in the marked body.
//!
//! Transitive propagation follows confident edges only (see
//! [`crate::callgraph`]): ambiguous method dispatch degrades to the
//! pre-PR-9 body-only check, never to false positives. The
//! `transitive-hot-path` option in `lint.toml` can switch propagation
//! off wholesale.

use super::{emit, seq_at, WaiverLedger};
use crate::callgraph::CallGraph;
use crate::config::LintConfig;
use crate::report::Report;
use crate::workspace::Workspace;

const RULE: &str = "hot-path-alloc";

/// (token sequence, what to say about it)
const BANNED: &[(&[&str], &str)] = &[
    (
        &["Vec", ":", ":", "new"],
        "`Vec::new` allocates on first push",
    ),
    (
        &["Vec", ":", ":", "with_capacity"],
        "`Vec::with_capacity` allocates",
    ),
    (&["vec", "!"], "`vec![…]` allocates"),
    (
        &["String", ":", ":", "new"],
        "`String::new` allocates on first push",
    ),
    (&["String", ":", ":", "from"], "`String::from` allocates"),
    (&["Box", ":", ":", "new"], "`Box::new` allocates"),
    (&["format", "!"], "`format!` allocates a fresh String"),
    (&[".", "to_vec", "("], "`.to_vec()` copies into a fresh Vec"),
    (&[".", "to_owned", "("], "`.to_owned()` allocates"),
    (&[".", "to_string", "("], "`.to_string()` allocates"),
    (&[".", "clone", "(", ")"], "`.clone()` deep-copies"),
    (
        &[".", "collect", "("],
        "`.collect()` builds a fresh container",
    ),
];

/// Runs L1 over every hot-path-marked function and (unless disabled)
/// everything confidently reachable from one.
pub fn check(
    ws: &Workspace,
    graph: &CallGraph,
    cfg: &LintConfig,
    report: &mut Report,
    ledger: &mut WaiverLedger,
) {
    let seeds: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.hot_path)
        .map(|(id, _)| id)
        .collect();
    // The markers themselves are load-bearing: if a refactor drops them
    // all, the rule must not silently pass an unmarked workspace.
    if seeds.is_empty() {
        super::emit_unwaivable(
            report,
            RULE,
            "(workspace)",
            0,
            "no `// lint:hot-path` markers found — the solver hot paths must stay marked"
                .to_owned(),
        );
        return;
    }

    let (reach, parent) = if cfg.transitive_hot_path {
        graph.reachable(&seeds)
    } else {
        let mut only_seeds = vec![false; graph.fns.len()];
        for &s in &seeds {
            only_seeds[s] = true;
        }
        (only_seeds, vec![None; graph.fns.len()])
    };

    for (fid, node) in graph.fns.iter().enumerate() {
        if !reach[fid] || node.is_test {
            continue;
        }
        let file = &ws.crates[node.loc.0].files[node.loc.1];
        let (start, end) = node.body;
        let mut i = start;
        while i < end.min(file.code.len()) {
            for (needle, why) in BANNED {
                if seq_at(&file.code, i, needle) {
                    let msg = if node.hot_path {
                        format!("{} inside hot-path fn `{}`", why, node.name)
                    } else {
                        format!(
                            "{} inside `{}`, reachable from a hot path via `{}`",
                            why,
                            node.name,
                            graph.chain(&parent, fid).join(" → ")
                        )
                    };
                    emit(report, ledger, file, RULE, file.code[i].line, msg);
                    break;
                }
            }
            i += 1;
        }
    }
}
