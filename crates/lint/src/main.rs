//! Standalone linter binary. Exit codes: 0 clean, 1 findings, 2 usage
//! or load error. The `netmaster lint` subcommand is a thin wrapper
//! over the same engine.

use netmaster_lint::{find_root, run_lint, Level, LintConfig, RULE_IDS};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "netmaster-lint — project-rule static analysis

USAGE:
    netmaster-lint [OPTIONS]

OPTIONS:
    --root <DIR>      workspace root (default: walk up from cwd)
    --config <FILE>   lint.toml (default: <root>/lint.toml)
    --json            machine-readable report on stdout
    --allow <RULES>   comma-separated rules to skip
    --deny <RULES>    comma-separated rules to force on
    --index-guard     enable panic-hygiene's slice-index sub-check
    --list-rules      print the rule catalogue and exit
    --help            this text
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("netmaster-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut json = false;
    let mut index_guard = false;
    let mut overrides: Vec<(String, Level)> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            "--list-rules" => {
                for r in RULE_IDS {
                    println!("{r}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--json" => json = true,
            "--index-guard" => index_guard = true,
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--config" => {
                config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--allow" | "--deny" => {
                let level = if arg == "--allow" {
                    Level::Allow
                } else {
                    Level::Deny
                };
                let list = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs a rule list"))?;
                for rule in list.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                    overrides.push((rule.to_owned(), level));
                }
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_root(&cwd).ok_or("no workspace root found above the current directory")?
        }
    };
    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let mut cfg = LintConfig::load(&config_path)?;
    if index_guard {
        cfg.index_guard = true;
    }
    for (rule, level) in overrides {
        cfg.set_level(&rule, level)?;
    }

    let report = run_lint(&root, &cfg).map_err(|e| e.to_string())?;
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
