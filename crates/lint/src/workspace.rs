//! Workspace discovery: enumerates the project's crates, parses their
//! manifests (a hand-rolled TOML subset — enough for `[dependencies]`
//! and `[features]`), lexes every source file, and propagates
//! `#[cfg(...)] mod x;` gating down the module tree.
//!
//! Scope policy: the root package plus everything under `crates/` is
//! linted; `vendor/` holds offline stand-ins for external dependencies
//! (third-party API surface, not project code) and is excluded, as is
//! any path containing a `fixtures` component (deliberate violations
//! used by the lint engine's own tests) and build output under
//! `target/`.

use crate::source::{FileRole, SourceFile};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One parsed dependency entry.
#[derive(Debug, Clone, Default)]
pub struct DepEntry {
    /// `default-features = false` was given (directly or via the
    /// workspace dependency table).
    pub default_features_off: bool,
}

/// The subset of a `Cargo.toml` the lint rules need.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `[package] name`.
    pub name: String,
    /// `[dependencies]` (name → entry).
    pub deps: BTreeMap<String, DepEntry>,
    /// `[dev-dependencies]` names.
    pub dev_deps: BTreeMap<String, DepEntry>,
    /// `[features]` (name → forwarded entries).
    pub features: BTreeMap<String, Vec<String>>,
    /// `[workspace.dependencies]` (root manifest only).
    pub workspace_deps: BTreeMap<String, DepEntry>,
}

/// One workspace member with its parsed sources.
pub struct CrateInfo {
    /// Package name from the manifest.
    pub name: String,
    /// Directory relative to the workspace root (`""` for the root).
    pub rel_dir: String,
    /// Parsed manifest.
    pub manifest: Manifest,
    /// Analyzed source files.
    pub files: Vec<SourceFile>,
}

/// The whole analyzed workspace.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Members (root package first, then `crates/*` sorted by name).
    pub crates: Vec<CrateInfo>,
    /// Root manifest (for `[workspace.dependencies]` checks).
    pub root_manifest: Manifest,
}

/// Errors from workspace loading.
#[derive(Debug)]
pub struct LoadError(pub String);

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LoadError {}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Loads and analyzes the workspace rooted at `root`.
pub fn load(root: &Path) -> Result<Workspace, LoadError> {
    let root_manifest = parse_manifest(&root.join("Cargo.toml"))?;
    let mut crates = Vec::new();

    // The root package.
    crates.push(load_crate(root, root, String::new(), &root_manifest)?);

    // crates/* members, sorted for deterministic output.
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| LoadError(format!("cannot read {}: {e}", crates_dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    for dir in dirs {
        let rel = format!(
            "crates/{}",
            dir.file_name().and_then(|n| n.to_str()).unwrap_or("?")
        );
        crates.push(load_crate(root, &dir, rel, &root_manifest)?);
    }

    Ok(Workspace {
        root: root.to_path_buf(),
        crates,
        root_manifest,
    })
}

fn load_crate(
    root: &Path,
    dir: &Path,
    rel_dir: String,
    root_manifest: &Manifest,
) -> Result<CrateInfo, LoadError> {
    let mut manifest = parse_manifest(&dir.join("Cargo.toml"))?;
    // A `name.workspace = true` dependency inherits the root table's
    // default-features setting.
    for (name, entry) in manifest.deps.iter_mut().chain(manifest.dev_deps.iter_mut()) {
        if let Some(ws) = root_manifest.workspace_deps.get(name) {
            entry.default_features_off |= ws.default_features_off;
        }
    }

    let mut files = Vec::new();
    for (sub, role) in [
        ("src", FileRole::Src),
        ("tests", FileRole::TestDir),
        ("examples", FileRole::ExampleDir),
        ("benches", FileRole::BenchDir),
    ] {
        let base = dir.join(sub);
        if base.is_dir() {
            collect_rs(root, &base, role, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    propagate_mod_gates(&mut files);
    Ok(CrateInfo {
        name: manifest.name.clone(),
        rel_dir,
        manifest,
        files,
    })
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    role: FileRole,
    out: &mut Vec<SourceFile>,
) -> Result<(), LoadError> {
    let entries =
        fs::read_dir(dir).map_err(|e| LoadError(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == "fixtures" || name == "target" || name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs(root, &path, role, out)?;
        } else if name.ends_with(".rs") {
            let src = fs::read_to_string(&path)
                .map_err(|e| LoadError(format!("cannot read {}: {e}", path.display())))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::analyze(rel, path, role, &src));
        }
    }
    Ok(())
}

/// Pushes `#[cfg(test)]` / `#[cfg(feature = "obs")]` gates on
/// `mod x;` declarations down to the declared files, transitively.
fn propagate_mod_gates(files: &mut [SourceFile]) {
    // (dir that child modules resolve against, decl name, test, obs)
    let mut pending: Vec<(PathBuf, String, bool, bool)> = Vec::new();
    for f in files.iter() {
        let base = module_child_dir(&f.abs_path);
        for (name, test, obs) in &f.mod_decls {
            pending.push((base.clone(), name.clone(), *test, *obs));
        }
    }
    // Fixpoint: a gated parent gates its children's declarations too.
    let mut changed = true;
    while changed {
        changed = false;
        for (base, name, test, obs) in pending.clone() {
            let child_rs = base.join(format!("{name}.rs"));
            let child_mod = base.join(name.clone()).join("mod.rs");
            for f in files.iter_mut() {
                if f.abs_path == child_rs || f.abs_path == child_mod {
                    let new_test = f.file_test_gated || test;
                    let new_obs = f.file_obs_gated || obs;
                    if new_test != f.file_test_gated || new_obs != f.file_obs_gated {
                        f.file_test_gated = new_test;
                        f.file_obs_gated = new_obs;
                        changed = true;
                    }
                    if new_test || new_obs {
                        let child_base = module_child_dir(&f.abs_path);
                        for (n, t, o) in &f.mod_decls {
                            let entry =
                                (child_base.clone(), n.clone(), new_test || *t, new_obs || *o);
                            if !pending.contains(&entry) {
                                pending.push(entry);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The directory a file's `mod x;` declarations resolve in.
fn module_child_dir(file: &Path) -> PathBuf {
    let dir = file.parent().unwrap_or(Path::new("")).to_path_buf();
    let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    match stem {
        "lib" | "main" | "mod" => dir,
        _ => dir.join(stem),
    }
}

/// Parses the TOML subset this workspace's manifests use: `[section]`
/// headers, `key = value` lines (strings, booleans, arrays possibly
/// spanning lines, inline tables), and dotted keys
/// (`dep.workspace = true`).
pub fn parse_manifest(path: &Path) -> Result<Manifest, LoadError> {
    let text = fs::read_to_string(path)
        .map_err(|e| LoadError(format!("cannot read {}: {e}", path.display())))?;
    let mut m = Manifest::default();
    let mut section = String::new();
    let mut buf = String::new();
    for raw in text.lines() {
        let line = strip_toml_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if buf.is_empty() && line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_owned();
            continue;
        }
        buf.push_str(line);
        buf.push(' ');
        // A logical line ends when brackets/braces balance.
        if !balanced(&buf) {
            continue;
        }
        let logical = std::mem::take(&mut buf);
        let Some((key, value)) = logical.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        match section.as_str() {
            "package" if key == "name" => {
                m.name = unquote(value).to_owned();
            }
            "dependencies" | "dev-dependencies" | "workspace.dependencies" => {
                let (dep_name, entry) = parse_dep(key, value);
                match section.as_str() {
                    "dependencies" => {
                        m.deps.insert(dep_name, entry);
                    }
                    "dev-dependencies" => {
                        m.dev_deps.insert(dep_name, entry);
                    }
                    _ => {
                        m.workspace_deps.insert(dep_name, entry);
                    }
                }
            }
            "features" => {
                m.features.insert(key.to_owned(), parse_string_array(value));
            }
            _ => {}
        }
    }
    if m.name.is_empty() {
        m.name = path
            .parent()
            .and_then(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
    }
    Ok(m)
}

fn parse_dep(key: &str, value: &str) -> (String, DepEntry) {
    // `dep.workspace = true` / `dep.features = [...]` dotted form.
    let dep_name = key.split('.').next().unwrap_or(key).trim().to_owned();
    let mut entry = DepEntry::default();
    if value.contains("default-features") {
        // `{ ..., default-features = false }` inline table.
        if let Some(rest) = value.split("default-features").nth(1) {
            entry.default_features_off = rest.trim_start_matches([' ', '=']).starts_with("false");
        }
    }
    (dep_name, entry)
}

fn parse_string_array(value: &str) -> Vec<String> {
    value
        .trim_matches(['[', ']', ' '])
        .split(',')
        .map(|s| unquote(s.trim()).to_owned())
        .filter(|s| !s.is_empty())
        .collect()
}

fn unquote(s: &str) -> &str {
    s.trim().trim_matches('"')
}

fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0 && !in_str
}

fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp_manifest(content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nmlint-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("Cargo.toml");
        let mut f = fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    #[test]
    fn parses_deps_features_and_multiline_arrays() {
        let path = tmp_manifest(
            r#"
[package]
name = "demo" # trailing comment

[dependencies]
netmaster-obs.workspace = true
other = { path = "../other", default-features = false }

[features]
default = ["obs"]
obs = [
    "netmaster-obs/enabled",
    "other/obs",
]
"#,
        );
        let m = parse_manifest(&path).unwrap();
        assert_eq!(m.name, "demo");
        assert!(m.deps.contains_key("netmaster-obs"));
        assert!(m.deps["other"].default_features_off);
        assert_eq!(m.features["default"], vec!["obs"]);
        assert_eq!(
            m.features["obs"],
            vec!["netmaster-obs/enabled", "other/obs"]
        );
    }

    #[test]
    fn workspace_dep_table_is_separated() {
        let path = tmp_manifest(
            "[workspace.dependencies]\nnetmaster-obs = { path = \"crates/obs\", default-features = false }\n",
        );
        let m = parse_manifest(&path).unwrap();
        assert!(m.workspace_deps["netmaster-obs"].default_features_off);
        assert!(m.deps.is_empty());
    }
}
