//! Lint configuration: per-rule allow/deny plus rule options, read
//! from a `lint.toml` at the workspace root (same hand-rolled TOML
//! subset as the manifest reader).
//!
//! ```toml
//! [rules]
//! hot-path-alloc = "deny"
//! panic-hygiene  = "deny"
//!
//! [options]
//! index-guard = "off"   # L4's slice-index sub-check (see DESIGN.md)
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// The nine rule ids, in catalogue order. The last four are the
/// call-graph–aware concurrency rules (PR 9); `hot-path-alloc` is
/// transitive over the same graph.
pub const RULE_IDS: [&str; 9] = [
    "hot-path-alloc",
    "feature-gate",
    "metric-names",
    "panic-hygiene",
    "determinism",
    "lock-order",
    "lock-across-io",
    "atomic-ordering",
    "thread-lifecycle",
];

/// Per-rule disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Rule runs; findings fail the lint.
    Deny,
    /// Rule is skipped entirely.
    Allow,
}

/// Resolved configuration for one run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Rule id → level (deny by default).
    pub rules: BTreeMap<String, Level>,
    /// L4's slice-index sub-check. Off by default: the codebase's
    /// fixed-size hourly arrays make a lexical index ban too noisy;
    /// fixtures and stricter configs can turn it on.
    pub index_guard: bool,
    /// L1's call-graph propagation: allocation in functions reachable
    /// from a `lint:hot-path` marker is flagged, not just the marked
    /// body. On by default; `transitive-hot-path = "off"` reverts to
    /// the body-only check.
    pub transitive_hot_path: bool,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            rules: RULE_IDS
                .iter()
                .map(|&r| (r.to_owned(), Level::Deny))
                .collect(),
            index_guard: false,
            transitive_hot_path: true,
        }
    }
}

impl LintConfig {
    /// `true` when `rule` should run.
    pub fn denies(&self, rule: &str) -> bool {
        self.rules.get(rule).copied().unwrap_or(Level::Deny) == Level::Deny
    }

    /// Applies a `--allow r1,r2` / `--deny r1,r2` style override.
    pub fn set_level(&mut self, rule: &str, level: Level) -> Result<(), String> {
        if !RULE_IDS.contains(&rule) {
            return Err(format!(
                "unknown rule {rule:?} (rules: {})",
                RULE_IDS.join(", ")
            ));
        }
        self.rules.insert(rule.to_owned(), level);
        Ok(())
    }

    /// Loads `lint.toml` from `path`; a missing file yields defaults.
    pub fn load(path: &Path) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(cfg),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let mut section = String::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                section = line.trim_matches(['[', ']']).to_owned();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "{}:{}: expected key = value",
                    path.display(),
                    ln + 1
                ));
            };
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            match section.as_str() {
                "rules" => {
                    let level = match value {
                        "deny" => Level::Deny,
                        "allow" => Level::Allow,
                        other => {
                            return Err(format!(
                                "{}:{}: rule level must be \"deny\" or \"allow\", got {other:?}",
                                path.display(),
                                ln + 1
                            ))
                        }
                    };
                    cfg.set_level(key, level)
                        .map_err(|e| format!("{}:{}: {e}", path.display(), ln + 1))?;
                }
                "options" => match key {
                    "index-guard" => {
                        cfg.index_guard = matches!(value, "on" | "true");
                    }
                    "transitive-hot-path" => {
                        cfg.transitive_hot_path = !matches!(value, "off" | "false");
                    }
                    other => {
                        return Err(format!(
                            "{}:{}: unknown option {other:?}",
                            path.display(),
                            ln + 1
                        ))
                    }
                },
                other => {
                    return Err(format!(
                        "{}:{}: unknown section [{other}]",
                        path.display(),
                        ln + 1
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn defaults_deny_everything_with_index_guard_off() {
        let cfg = LintConfig::default();
        for r in RULE_IDS {
            assert!(cfg.denies(r));
        }
        assert!(!cfg.index_guard);
    }

    #[test]
    fn parses_overrides_and_rejects_typos() {
        let dir = std::env::temp_dir().join(format!("nmlint-cfg-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("lint.toml");
        let mut f = fs::File::create(&path).unwrap();
        writeln!(
            f,
            "[rules]\ndeterminism = \"allow\"  # trial\n[options]\nindex-guard = \"on\""
        )
        .unwrap();
        let cfg = LintConfig::load(&path).unwrap();
        assert!(!cfg.denies("determinism"));
        assert!(cfg.denies("panic-hygiene"));
        assert!(cfg.index_guard);

        let mut f = fs::File::create(&path).unwrap();
        writeln!(f, "[rules]\npanik = \"deny\"").unwrap();
        assert!(LintConfig::load(&path)
            .unwrap_err()
            .contains("unknown rule"));
    }

    #[test]
    fn missing_file_is_defaults() {
        let cfg = LintConfig::load(Path::new("/nonexistent/lint.toml")).unwrap();
        assert!(cfg.denies("metric-names"));
    }
}
