//! A hand-rolled Rust lexer: just enough tokenization for lexical
//! lint rules — comments, all string/char literal forms, lifetimes,
//! identifiers, numbers, and single-character punctuation — with line
//! numbers on every token. No parse tree; the rule engine works on
//! token sequences plus the region analysis in [`crate::source`].

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`s, stored unprefixed).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String literal of any form (`"…"`, `r"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`), stored without the quote.
    Lifetime,
    /// Numeric literal (integers, floats, with suffixes).
    Num,
    /// `// …` comment, stored without the slashes, trimmed.
    LineComment,
    /// `/* … */` comment (possibly nested), stored without delimiters.
    BlockComment,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Class of the token.
    pub kind: TokKind,
    /// Token text. Strings keep their quotes; comments are stripped.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` when this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// The inner value of a plain/raw string literal (no escape
    /// processing — registry names and rule literals never use escapes).
    pub fn str_value(&self) -> Option<&str> {
        if self.kind != TokKind::Str {
            return None;
        }
        let s = self.text.trim_start_matches(['b', 'r']);
        let s = s.trim_matches('#');
        s.strip_prefix('"').and_then(|s| s.strip_suffix('"'))
    }
}

/// Tokenizes `src`. Invalid UTF-8 never reaches here (callers read
/// files as strings); lexically broken input degrades to punctuation
/// tokens rather than failing — a linter should never crash on source
/// it does not fully understand.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let ident_start = |c: char| c == '_' || c.is_alphabetic();
    let ident_cont = |c: char| c == '_' || c.is_alphanumeric();

    while i < n {
        let c = chars[i];
        let start_line = line;
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let mut j = i + 2;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[i + 2..j].iter().collect();
            toks.push(Tok {
                kind: TokKind::LineComment,
                text: text.trim().to_owned(),
                line: start_line,
            });
            i = j;
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(i + 2);
            let text: String = chars[i + 2..end.min(n)].iter().collect();
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: text.trim().to_owned(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Raw / byte string prefixes and raw identifiers.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i + 1;
            let mut saw_r = c == 'r';
            if c == 'b' && j < n && chars[j] == 'r' {
                saw_r = true;
                j += 1;
            }
            if c == 'r' && j < n && chars[j] == '#' && j + 1 < n && ident_start(chars[j + 1]) {
                // Raw identifier r#ident.
                let mut k = j + 1;
                while k < n && ident_cont(chars[k]) {
                    k += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[j + 1..k].iter().collect(),
                    line: start_line,
                });
                i = k;
                continue;
            }
            let mut hashes = 0usize;
            while saw_r && j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' && (saw_r || c == 'b') {
                // (b)r#*"..."#* or b"..." string.
                let mut k = j + 1;
                let text_end;
                loop {
                    if k >= n {
                        text_end = n;
                        break;
                    }
                    let ch = chars[k];
                    if ch == '\n' {
                        line += 1;
                    }
                    if ch == '\\' && !saw_r {
                        k += 2;
                        continue;
                    }
                    if ch == '"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && chars[k + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            text_end = k + 1 + hashes;
                            k = text_end;
                            break;
                        }
                    }
                    k += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: chars[i..text_end.min(n)].iter().collect(),
                    line: start_line,
                });
                i = k;
                continue;
            }
            if c == 'b' && j < n && chars[j] == '\'' {
                // Byte char literal b'…'.
                let (k, nl) = scan_char_literal(&chars, j);
                line += nl;
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i..k.min(n)].iter().collect(),
                    line: start_line,
                });
                i = k;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Plain strings.
        if c == '"' {
            let mut j = i + 1;
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    '"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[i..j.min(n)].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident not closed by another quote.
            if i + 1 < n && ident_start(chars[i + 1]) {
                let mut k = i + 2;
                while k < n && ident_cont(chars[k]) {
                    k += 1;
                }
                if k >= n || chars[k] != '\'' {
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[i + 1..k].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
            let (k, nl) = scan_char_literal(&chars, i);
            line += nl;
            toks.push(Tok {
                kind: TokKind::Char,
                text: chars[i..k.min(n)].iter().collect(),
                line: start_line,
            });
            i = k;
            continue;
        }
        // Identifiers / keywords.
        if ident_start(c) {
            let mut j = i + 1;
            while j < n && ident_cont(chars[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Numbers (loose: digits then any ident/dot continuation that
        // is not a method call — `1.max(2)` keeps `.max` separate).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n
                && (ident_cont(chars[j])
                    || (chars[j] == '.'
                        && j + 1 < n
                        && chars[j + 1].is_ascii_digit()
                        && chars[j - 1] != '.'))
            {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Everything else: single-char punctuation.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: start_line,
        });
        i += 1;
    }
    toks
}

/// Scans a char/byte literal starting at the opening quote index;
/// returns (index past the closing quote, newlines crossed).
fn scan_char_literal(chars: &[char], open: usize) -> (usize, u32) {
    let n = chars.len();
    let mut j = open + 1;
    let newlines = 0u32;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return (j + 1, newlines),
            '\n' => {
                // Broken literal: stop at the line end.
                return (j, newlines);
            }
            _ => j += 1,
        }
    }
    (n, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_idents_puncts_and_strings() {
        let toks = kinds(r#"counter!("sched_total", 3);"#);
        assert_eq!(toks[0], (TokKind::Ident, "counter".into()));
        assert_eq!(toks[1], (TokKind::Punct, "!".into()));
        assert_eq!(toks[2], (TokKind::Punct, "(".into()));
        assert_eq!(toks[3], (TokKind::Str, "\"sched_total\"".into()));
        assert_eq!(lex(r#""a_b""#)[0].str_value(), Some("a_b"));
    }

    #[test]
    fn comments_do_not_hide_line_numbers() {
        let src = "// one\nlet x = 1; /* two\nlines */ fn f() {}\n";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[0].text, "one");
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3, "block comment newlines must count");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; let c = 'x'; let nl = '\\n';");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
        assert!(toks.contains(&(TokKind::Char, "'\\n'".into())));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let s = r#"no "escape" here"#; let b = b"bytes";"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("no \"escape\" here")));
        assert!(toks.contains(&(TokKind::Str, "b\"bytes\"".into())));
        // r-prefixed identifiers still lex as identifiers.
        let toks = kinds("let ready = radio;");
        assert!(toks.contains(&(TokKind::Ident, "ready".into())));
        assert!(toks.contains(&(TokKind::Ident, "radio".into())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn strings_hide_braces_and_comment_markers() {
        let toks = lex(r#"let s = "{ // not a comment }"; fn g() {}"#);
        assert_eq!(toks.iter().filter(|t| t.is_punct('{')).count(), 1);
        assert!(!toks.iter().any(|t| t.kind == TokKind::LineComment));
    }
}
