//! Findings, waiver accounting, and report rendering (text + JSON).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`hot-path-alloc`, `feature-gate`, …).
    pub rule: &'static str,
    /// Workspace-relative file (or `Cargo.toml` path) the finding is in.
    pub file: String,
    /// 1-based line (0 for whole-file/manifest findings).
    pub line: u32,
    /// Human message.
    pub message: String,
}

/// One *used* waiver: a finding that was suppressed by an inline
/// `lint:allow` with a reason. Counted so waiver drift stays visible.
#[derive(Debug, Clone)]
pub struct WaivedFinding {
    /// The suppressed finding.
    pub finding: Finding,
    /// The waiver's justification text.
    pub reason: String,
}

/// The result of one lint run.
#[derive(Default)]
pub struct Report {
    /// Active (non-waived) findings, sorted by file/line.
    pub findings: Vec<Finding>,
    /// Waived findings, with reasons.
    pub waived: Vec<WaivedFinding>,
    /// Rules that ran (id → active finding count).
    pub rule_counts: BTreeMap<&'static str, usize>,
    /// Rules that ran (id → wall time in microseconds) — the CI
    /// artifact's per-rule cost breakdown.
    pub rule_timings_us: BTreeMap<&'static str, u128>,
    /// Source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when no active findings remain.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sorts findings and recomputes per-rule counts.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.waived.sort_by(|a, b| {
            (&a.finding.file, a.finding.line).cmp(&(&b.finding.file, b.finding.line))
        });
        for f in &self.findings {
            *self.rule_counts.entry(f.rule).or_insert(0) += 1;
        }
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "{} finding(s), {} waived, {} file(s) scanned",
            self.findings.len(),
            self.waived.len(),
            self.files_scanned
        );
        if !self.rule_timings_us.is_empty() {
            let total: u128 = self.rule_timings_us.values().sum();
            let per_rule: Vec<String> = self
                .rule_timings_us
                .iter()
                .map(|(r, us)| format!("{r}={us}us"))
                .collect();
            let _ = writeln!(out, "timings: total={total}us {}", per_rule.join(" "));
        }
        if !self.waived.is_empty() {
            for w in &self.waived {
                let _ = writeln!(
                    out,
                    "  waived {}:{}: [{}] {} — {}",
                    w.finding.file, w.finding.line, w.finding.rule, w.finding.message, w.reason
                );
            }
        }
        out
    }

    /// Machine-readable report (hand-rolled JSON; the linter carries no
    /// dependencies).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"clean\": {},", self.clean());
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"waiver_count\": {},", self.waived.len());
        out.push_str("  \"rule_counts\": {");
        let mut first = true;
        for (rule, n) in &self.rule_counts {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {}", json_str(rule), n);
        }
        out.push_str("\n  },\n  \"rule_timings_us\": {");
        let mut first = true;
        for (rule, us) in &self.rule_timings_us {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {}", json_str(rule), us);
        }
        out.push_str("\n  },\n  \"findings\": [");
        let mut first = true;
        for f in &self.findings {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        out.push_str("\n  ],\n  \"waived\": [");
        let mut first = true;
        for w in &self.waived {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(w.finding.rule),
                json_str(&w.finding.file),
                w.finding.line,
                json_str(&w.reason)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            findings: vec![Finding {
                rule: "panic-hygiene",
                file: "a \"b\".rs".into(),
                line: 3,
                message: "tab\there".into(),
            }],
            ..Report::default()
        };
        r.finalize();
        let json = r.render_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("a \\\"b\\\".rs"));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"panic-hygiene\": 1"));
        assert!(json.contains("\"waiver_count\": 0"));
    }
}
