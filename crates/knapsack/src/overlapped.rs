//! The paper's Algorithm 1: multiple knapsack with *overlapped itemsets*.
//!
//! Every screen-off network activity lies between two adjacent user
//! active slots and may be scheduled into either — so adjacent knapsacks
//! share an itemset. Algorithm 1 resolves this by (1) *duplicating* each
//! item into both candidate slots, (2) *sorting* each slot's items by
//! profit-to-weight ratio, (3) solving each slot's single knapsack —
//! the paper runs the FPTAS (`SinKnap`); this implementation dispatches
//! through [`crate::solvers::solve_auto`], which answers exactly via
//! the slack fast path or branch-and-bound where that is cheaper and
//! falls back to the quantized FPTAS — (4) *filtering* items selected
//! twice, and
//! (5) greedily adding leftovers (`GreedyAdd`). Lemma IV.1 proves the
//! result is a `(1−ε)/2`-approximation; [`solve`] keeps that guarantee
//! (filtering retains the higher-profit copy, which preserves at least
//! half of each duplicated pair's contribution).

use crate::item::Item;
use crate::scratch::OvScratch;
use crate::solvers::{solve_auto, SolverKind};

/// A candidate placement of an item into a slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Target slot index.
    pub slot: usize,
    /// Profit `ΔE_j − ΔP_j` *if placed in this slot* (the penalty term
    /// depends on how far the activity moves, so profit is per-slot).
    pub profit: f64,
}

/// One schedulable item with its weight and candidate slots.
#[derive(Debug, Clone, PartialEq)]
pub struct OvItem {
    /// Weight `V(n_j)` in capacity units (bytes).
    pub weight: u64,
    /// Candidate slots (typically the two adjacent user active slots;
    /// one for activities before the first / after the last slot).
    pub candidates: Vec<Candidate>,
}

impl OvItem {
    /// Item with a single candidate slot.
    pub fn single(weight: u64, slot: usize, profit: f64) -> Self {
        OvItem {
            weight,
            candidates: vec![Candidate { slot, profit }],
        }
    }

    /// Item duplicated across two adjacent slots.
    pub fn pair(weight: u64, left: (usize, f64), right: (usize, f64)) -> Self {
        OvItem {
            weight,
            candidates: vec![
                Candidate {
                    slot: left.0,
                    profit: left.1,
                },
                Candidate {
                    slot: right.0,
                    profit: right.1,
                },
            ],
        }
    }

    /// Best candidate profit, `-inf` when no candidates.
    pub fn best_profit(&self) -> f64 {
        self.candidates
            .iter()
            .map(|c| c.profit)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The overlapped multiple-knapsack problem instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OvProblem {
    /// Capacity `C(t_i)` of each slot (Eq. 5).
    pub capacities: Vec<u64>,
    /// Items to place.
    pub items: Vec<OvItem>,
}

impl OvProblem {
    /// Validates slot indices.
    pub fn validate(&self) -> Result<(), String> {
        for (j, it) in self.items.iter().enumerate() {
            for c in &it.candidates {
                if c.slot >= self.capacities.len() {
                    // lint:allow(hot-path-alloc) rejection path only: the format aborts the solve, so steady-state calls never reach it
                    return Err(format!(
                        "item {j} references slot {} of {}",
                        c.slot,
                        self.capacities.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A solution: where each item went (if anywhere).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OvSolution {
    /// `assignment[j] = Some(slot)` when item `j` is scheduled.
    pub assignment: Vec<Option<usize>>,
    /// Items per slot.
    pub per_slot: Vec<Vec<usize>>,
    /// Total profit of the assignment.
    pub profit: f64,
    /// Used capacity per slot.
    pub used: Vec<u64>,
    /// `solver[slot]` records which [`solve_auto`] arm answered that
    /// slot's single-knapsack instance (`None` when the slot saw no
    /// eligible item and no solve ran). Recorded for causal tracing;
    /// empty for solvers that predate the dispatcher
    /// ([`crate::reference`], brute force).
    pub solver: Vec<Option<SolverKind>>,
}

/// Why the overlapped solver left an item unscheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OvRejectReason {
    /// The item listed no candidate slot.
    NoCandidate,
    /// No candidate had positive profit (the deferral penalty beat the
    /// energy saving everywhere).
    NoPositiveProfit,
    /// Profitable candidates existed but slot capacity ran out.
    CapacityFull,
}

/// The causal explanation of one item's outcome, reconstructed
/// post-hoc from a solution (never touched by solver inner loops).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemWhy {
    /// The item's weight.
    pub weight: u64,
    /// The winning candidate, when scheduled.
    pub chosen: Option<Candidate>,
    /// The competing candidate the item did *not* go to.
    pub runner_up: Option<Candidate>,
    /// Which solver arm answered the winning slot.
    pub solver: Option<SolverKind>,
    /// Why the item was left out, when unscheduled.
    pub reject: Option<OvRejectReason>,
}

impl OvSolution {
    /// Explains item `j`'s outcome: where it went and against what
    /// competition, or why it was rejected. `problem` must be the
    /// instance this solution was produced from.
    pub fn why(&self, problem: &OvProblem, j: usize) -> ItemWhy {
        let item = &problem.items[j];
        let mut why = ItemWhy {
            weight: item.weight,
            chosen: None,
            runner_up: None,
            solver: None,
            reject: None,
        };
        match self.assignment.get(j).copied().flatten() {
            Some(slot) => {
                for c in &item.candidates {
                    if c.slot == slot && why.chosen.is_none() {
                        why.chosen = Some(*c);
                    } else if why.runner_up.is_none_or(|r| c.profit > r.profit) {
                        why.runner_up = Some(*c);
                    }
                }
                why.solver = self.solver.get(slot).copied().flatten();
            }
            None => {
                why.reject = Some(if item.candidates.is_empty() {
                    OvRejectReason::NoCandidate
                } else if !item.candidates.iter().any(|c| c.profit > 0.0) {
                    OvRejectReason::NoPositiveProfit
                } else {
                    OvRejectReason::CapacityFull
                });
            }
        }
        why
    }
    /// Checks feasibility against the problem.
    pub fn feasible(&self, problem: &OvProblem) -> bool {
        if self.used.len() != problem.capacities.len() {
            return false;
        }
        for (slot, &u) in self.used.iter().enumerate() {
            if u > problem.capacities[slot] {
                return false;
            }
        }
        // Each assignment must be one of the item's candidates.
        for (j, a) in self.assignment.iter().enumerate() {
            if let Some(slot) = a {
                if !problem.items[j].candidates.iter().any(|c| c.slot == *slot) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of scheduled items.
    pub fn scheduled_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }
}

/// Solves the overlapped multiple-knapsack problem with Algorithm 1.
///
/// Guarantees profit ≥ `(1 − eps)/2 · OPT` for instances with
/// non-negative candidate profits (Lemma IV.1).
///
/// Allocates a fresh workspace; hot paths should hold an [`OvScratch`]
/// and call [`solve_with`].
pub fn solve(problem: &OvProblem, eps: f64) -> OvSolution {
    solve_with(problem, eps, &mut OvScratch::new())
}

/// [`solve`] reusing a caller-owned workspace: per-slot candidate
/// lists, the per-slot item buffer, and the inner solver tables
/// all live in `scratch` and are reused across calls, so a policy
/// planning thousands of days performs no per-solve table allocations.
/// The `GreedyAdd` step runs directly over the already-ratio-sorted
/// slot lists instead of re-sorting through
/// [`crate::solvers::greedy_add`].
// lint:hot-path
pub fn solve_with(problem: &OvProblem, eps: f64, scratch: &mut OvScratch) -> OvSolution {
    debug_assert_eq!(problem.validate(), Ok(()));
    let nslots = problem.capacities.len();
    let nitems = problem.items.len();
    scratch.begin(nslots, nitems);
    let OvScratch {
        knap,
        slot_items,
        items_buf,
        selected,
        chosen_slots,
    } = scratch;

    // --- Step 1: duplication — build each slot's (item, profit) list.
    // Candidates no solver can ever accept (non-positive profit, or
    // heavier than the whole slot) are dropped here once instead of
    // being re-filtered inside every per-slot solve and GreedyAdd scan.
    // They cannot appear in any solution, so the result is unchanged;
    // `why` reads rejection reasons off the problem, not these lists.
    for (j, it) in problem.items.iter().enumerate() {
        for c in &it.candidates {
            if c.profit > 0.0 && it.weight <= problem.capacities[c.slot] {
                slot_items[c.slot].push((j, c.profit));
            }
        }
    }

    // --- Steps 2+3: per-slot ratio sort, then the solver dispatcher
    // (slack fast path → exact branch-and-bound → quantized FPTAS).
    // lint:allow(hot-path-alloc) OvSolution::solver is the caller-owned result value, not reusable scratch
    let mut solver: Vec<Option<SolverKind>> = vec![None; nslots];
    for (slot, list) in slot_items.iter_mut().enumerate() {
        if list.is_empty() {
            continue;
        }
        // Sorting step (paper's step 2); the solvers are order-free,
        // but the canonical order makes reconstruction deterministic.
        list.sort_by(|a, b| {
            let ra = a.1 / problem.items[a.0].weight.max(1) as f64;
            let rb = b.1 / problem.items[b.0].weight.max(1) as f64;
            rb.total_cmp(&ra)
        });
        items_buf.clear();
        items_buf.extend(
            list.iter()
                .map(|&(j, p)| Item::new(p, problem.items[j].weight)),
        );
        let sol = solve_auto(items_buf, problem.capacities[slot], eps, knap);
        solver[slot] = knap.last_solver();
        selected[slot].extend(sol.chosen.iter().map(|&k| list[k].0));
    }

    // --- Step 4: filtering — items chosen in two slots keep one copy.
    // Keep the higher-profit copy (preserves the (1−ε)/2 bound); on a
    // profit tie use the paper's rule, the slot with smaller residual
    // C(t_i) − V(n_j), leaving the roomier slot free for GreedyAdd.
    for (slot, items) in selected.iter().enumerate() {
        for &j in items {
            chosen_slots[j].push(slot);
        }
    }
    // lint:allow(hot-path-alloc) OvSolution::assignment is the caller-owned result value, not reusable scratch
    let mut assignment: Vec<Option<usize>> = vec![None; nitems];
    // lint:allow(hot-path-alloc) OvSolution::used is the caller-owned result value, not reusable scratch
    let mut used = vec![0u64; nslots];
    let profit_of = |j: usize, slot: usize| -> f64 {
        problem.items[j]
            .candidates
            .iter()
            .find(|c| c.slot == slot)
            .map(|c| c.profit)
            .unwrap_or(f64::NEG_INFINITY)
    };
    for (j, slots) in chosen_slots.iter().enumerate() {
        let keep = match slots.len() {
            0 => continue,
            1 => slots[0],
            _ => {
                let (a, b) = (slots[0], slots[1]);
                let (pa, pb) = (profit_of(j, a), profit_of(j, b));
                if pa > pb {
                    a
                } else if pb > pa {
                    b
                } else {
                    // Tie: smaller residual capacity wins (paper's rule).
                    let w = problem.items[j].weight;
                    let ra = problem.capacities[a].saturating_sub(w);
                    let rb = problem.capacities[b].saturating_sub(w);
                    if ra <= rb {
                        a
                    } else {
                        b
                    }
                }
            }
        };
        assignment[j] = Some(keep);
        used[keep] += problem.items[j].weight;
    }

    // --- Step 5: GreedyAdd — pack unassigned items into residual room.
    // The slot lists are already in profit-to-weight order from step 2
    // and hold only positive-profit, slot-feasible candidates from
    // step 1, so the greedy fill is a single scan: no candidate-list
    // rebuild, no re-sort, no temporary `Solution`. Zero-weight items
    // sort differently under `Item::ratio` (∞) than under the slot key
    // (p/max(w,1)), but they consume no capacity, so the set of items
    // accepted is identical to running `greedy_add` on the rebuilt
    // candidate list as the original implementation did
    // (see `crate::reference::solve`).
    for slot in 0..nslots {
        let cap = problem.capacities[slot];
        if used[slot] >= cap {
            continue;
        }
        for &(j, _) in slot_items[slot].iter() {
            if assignment[j].is_some() {
                continue;
            }
            let w = problem.items[j].weight;
            if used[slot] + w <= cap {
                assignment[j] = Some(slot);
                used[slot] += w;
            }
        }
    }

    // Assemble.
    // lint:allow(hot-path-alloc) OvSolution::per_slot is the caller-owned result value, not reusable scratch
    let mut per_slot: Vec<Vec<usize>> = vec![Vec::new(); nslots];
    let mut profit = 0.0;
    for (j, a) in assignment.iter().enumerate() {
        if let Some(slot) = a {
            per_slot[*slot].push(j);
            profit += profit_of(j, *slot);
        }
    }
    let out = OvSolution {
        assignment,
        per_slot,
        profit,
        used,
        solver,
    };
    #[cfg(feature = "strict-invariants")]
    {
        assert!(
            out.feasible(problem),
            "strict-invariants: overlapped solve produced an infeasible assignment"
        );
        let placed: usize = out.per_slot.iter().map(Vec::len).sum();
        assert_eq!(
            placed,
            out.scheduled_count(),
            "strict-invariants: per_slot and assignment disagree on scheduled items"
        );
    }
    out
}

/// Exact solver by exhaustive assignment enumeration, for instances of
/// at most 12 items. Oracle for the approximation-ratio tests.
pub fn brute_force(problem: &OvProblem) -> OvSolution {
    let n = problem.items.len();
    assert!(n <= 12, "brute force limited to 12 items");
    let nslots = problem.capacities.len();
    let mut best = OvSolution {
        assignment: vec![None; n],
        per_slot: vec![Vec::new(); nslots],
        profit: 0.0,
        used: vec![0; nslots],
        solver: Vec::new(),
    };
    // Each item has candidates.len()+1 options (including "skip").
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    fn rec(
        j: usize,
        problem: &OvProblem,
        assignment: &mut Vec<Option<usize>>,
        used: &mut Vec<u64>,
        profit: f64,
        best: &mut OvSolution,
    ) {
        if j == problem.items.len() {
            if profit > best.profit {
                best.profit = profit;
                best.assignment = assignment.clone();
                best.used = used.clone();
            }
            return;
        }
        // Skip.
        rec(j + 1, problem, assignment, used, profit, best);
        // Each candidate.
        let cands = problem.items[j].candidates.clone();
        for c in cands {
            if used[c.slot] + problem.items[j].weight <= problem.capacities[c.slot] {
                used[c.slot] += problem.items[j].weight;
                assignment[j] = Some(c.slot);
                rec(j + 1, problem, assignment, used, profit + c.profit, best);
                assignment[j] = None;
                used[c.slot] -= problem.items[j].weight;
            }
        }
    }
    let mut used = vec![0u64; nslots];
    rec(0, problem, &mut assignment, &mut used, 0.0, &mut best);
    // Rebuild per_slot.
    for (j, a) in best.assignment.iter().enumerate() {
        if let Some(slot) = a {
            best.per_slot[*slot].push(j);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_reduces_to_single_knapsack() {
        let p = OvProblem {
            capacities: vec![50],
            items: vec![
                OvItem::single(10, 0, 60.0),
                OvItem::single(20, 0, 100.0),
                OvItem::single(30, 0, 120.0),
            ],
        };
        let s = solve(&p, 0.01);
        assert!(s.feasible(&p));
        assert!((s.profit - 220.0).abs() < 1e-6);
        assert_eq!(s.scheduled_count(), 2);
    }

    #[test]
    fn duplicated_item_lands_in_exactly_one_slot() {
        let p = OvProblem {
            capacities: vec![10, 10],
            items: vec![OvItem::pair(10, (0, 5.0), (1, 5.0))],
        };
        let s = solve(&p, 0.1);
        assert!(s.feasible(&p));
        assert_eq!(s.scheduled_count(), 1);
        assert!((s.profit - 5.0).abs() < 1e-9);
        // Exactly one slot used.
        assert_eq!(s.used.iter().filter(|&&u| u > 0).count(), 1);
    }

    #[test]
    fn filtering_prefers_higher_profit_slot() {
        let p = OvProblem {
            capacities: vec![10, 10],
            items: vec![OvItem::pair(10, (0, 3.0), (1, 8.0))],
        };
        let s = solve(&p, 0.05);
        assert_eq!(s.assignment[0], Some(1));
        assert!((s.profit - 8.0).abs() < 1e-9);
    }

    #[test]
    fn tie_breaks_to_tighter_slot() {
        // Equal profits, slot 1 has less residual after placing.
        let p = OvProblem {
            capacities: vec![100, 12],
            items: vec![OvItem::pair(10, (0, 5.0), (1, 5.0))],
        };
        let s = solve(&p, 0.05);
        assert_eq!(s.assignment[0], Some(1), "tighter slot keeps the item");
    }

    #[test]
    fn greedy_add_rescues_filtered_items() {
        // Two identical items, both duplicated across two slots each of
        // which only fits one: filtering would put both in one slot and
        // drop one; GreedyAdd must place the loser in the other slot.
        let p = OvProblem {
            capacities: vec![10, 10],
            items: vec![
                OvItem::pair(10, (0, 5.0), (1, 5.0)),
                OvItem::pair(10, (0, 5.0), (1, 5.0)),
            ],
        };
        let s = solve(&p, 0.05);
        assert!(s.feasible(&p));
        assert_eq!(s.scheduled_count(), 2, "both items must be placed");
        assert!((s.profit - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_binds() {
        let p = OvProblem {
            capacities: vec![15],
            items: vec![
                OvItem::single(10, 0, 10.0),
                OvItem::single(10, 0, 9.0),
                OvItem::single(5, 0, 3.0),
            ],
        };
        let s = solve(&p, 0.01);
        assert!(s.feasible(&p));
        // Best feasible: item0 + item2 = 13 profit, weight 15.
        assert!((s.profit - 13.0).abs() < 1e-6);
    }

    #[test]
    fn empty_problem() {
        let s = solve(&OvProblem::default(), 0.1);
        assert_eq!(s.profit, 0.0);
        assert_eq!(s.scheduled_count(), 0);
    }

    #[test]
    fn negative_profit_items_are_skipped() {
        let p = OvProblem {
            capacities: vec![100],
            items: vec![OvItem::single(10, 0, -5.0), OvItem::single(10, 0, 7.0)],
        };
        let s = solve(&p, 0.1);
        assert_eq!(s.assignment[0], None);
        assert_eq!(s.assignment[1], Some(0));
    }

    #[test]
    fn approximation_bound_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2014);
        let eps = 0.1;
        for trial in 0..60 {
            let nslots = rng.random_range(1..4usize);
            let nitems = rng.random_range(1..9usize);
            let capacities: Vec<u64> = (0..nslots).map(|_| rng.random_range(5..40)).collect();
            let items: Vec<OvItem> = (0..nitems)
                .map(|_| {
                    let w = rng.random_range(1..20);
                    let a = rng.random_range(0..nslots);
                    let p1 = rng.random_range(0.5..20.0);
                    if nslots > 1 && rng.random_bool(0.7) {
                        let b = (a + 1) % nslots;
                        let p2 = rng.random_range(0.5..20.0);
                        OvItem::pair(w, (a, p1), (b, p2))
                    } else {
                        OvItem::single(w, a, p1)
                    }
                })
                .collect();
            let p = OvProblem { capacities, items };
            let approx = solve(&p, eps);
            let opt = brute_force(&p);
            assert!(approx.feasible(&p), "trial {trial}");
            assert!(
                approx.profit >= (1.0 - eps) / 2.0 * opt.profit - 1e-9,
                "trial {trial}: {} < (1-ε)/2 · {}",
                approx.profit,
                opt.profit
            );
        }
    }

    #[test]
    fn why_explains_assignments_and_rejections() {
        let p = OvProblem {
            capacities: vec![10, 10],
            items: vec![
                // Scheduled: slot 1 wins on profit, slot 0 is runner-up.
                OvItem::pair(4, (0, 3.0), (1, 8.0)),
                // Rejected: no positive profit anywhere.
                OvItem::pair(2, (0, -1.0), (1, 0.0)),
                // Rejected: no candidate at all.
                OvItem {
                    weight: 5,
                    candidates: vec![],
                },
                // Rejected: profitable but too big for any slot's room.
                OvItem::single(100, 0, 9.0),
            ],
        };
        let s = solve(&p, 0.05);
        let w0 = s.why(&p, 0);
        assert_eq!(s.assignment[0], Some(1));
        assert_eq!(
            w0.chosen,
            Some(Candidate {
                slot: 1,
                profit: 8.0
            })
        );
        assert_eq!(
            w0.runner_up,
            Some(Candidate {
                slot: 0,
                profit: 3.0
            })
        );
        assert_eq!(w0.weight, 4);
        assert_eq!(
            w0.solver,
            Some(SolverKind::Fastpath),
            "4 ≤ 10: slack fast path must answer"
        );
        assert_eq!(w0.reject, None);

        assert_eq!(s.why(&p, 1).reject, Some(OvRejectReason::NoPositiveProfit));
        assert_eq!(s.why(&p, 2).reject, Some(OvRejectReason::NoCandidate));
        assert_eq!(s.why(&p, 3).reject, Some(OvRejectReason::CapacityFull));
        for j in 1..4 {
            assert_eq!(s.why(&p, j).chosen, None);
        }
    }

    #[test]
    fn solver_tags_match_dispatcher_behaviour() {
        // Slot 0 overflows with two items (exact branch-and-bound),
        // slot 1 has slack (fast path), slot 2 sees no items (no solve
        // at all), slot 3 overflows with more eligible items than the
        // dispatcher will hand to exact search (quantized DP).
        let mut items = vec![
            OvItem::single(8, 0, 5.0),
            OvItem::single(8, 0, 4.0),
            OvItem::single(8, 1, 3.0),
        ];
        for i in 0..41 {
            items.push(OvItem::single(8, 3, 1.0 + i as f64 * 0.1));
        }
        let p = OvProblem {
            capacities: vec![10, 100, 50, 40],
            items,
        };
        let s = solve(&p, 0.05);
        assert_eq!(
            s.solver,
            vec![
                Some(SolverKind::Bnb),
                Some(SolverKind::Fastpath),
                None,
                Some(SolverKind::Dp),
            ]
        );
        assert_eq!(s.why(&p, 2).solver, Some(SolverKind::Fastpath));
        assert_eq!(s.why(&p, 0).solver, Some(SolverKind::Bnb));
    }

    #[test]
    fn validation_catches_bad_slot_index() {
        let p = OvProblem {
            capacities: vec![10],
            items: vec![OvItem::single(1, 3, 1.0)],
        };
        assert!(p.validate().is_err());
    }

    fn random_problem(rng: &mut rand::rngs::StdRng, max_slots: usize) -> OvProblem {
        use rand::Rng;
        let nslots = rng.random_range(1..=max_slots);
        let nitems = rng.random_range(1..9usize);
        let capacities: Vec<u64> = (0..nslots).map(|_| rng.random_range(5..40)).collect();
        let items: Vec<OvItem> = (0..nitems)
            .map(|_| {
                let w = rng.random_range(1..20);
                let a = rng.random_range(0..nslots);
                let p1 = rng.random_range(0.5..20.0);
                if nslots > 1 && rng.random_bool(0.7) {
                    let b = (a + 1) % nslots;
                    let p2 = rng.random_range(0.5..20.0);
                    OvItem::pair(w, (a, p1), (b, p2))
                } else {
                    OvItem::single(w, a, p1)
                }
            })
            .collect();
        OvProblem { capacities, items }
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = OvScratch::new();
        for trial in 0..40 {
            let p = random_problem(&mut rng, 4);
            // Same instance through a dirty scratch must be bit-identical
            // to a fresh solve — nothing may leak between calls.
            let warm = solve_with(&p, 0.1, &mut scratch);
            let again = solve_with(&p, 0.1, &mut scratch);
            let fresh = solve(&p, 0.1);
            assert_eq!(warm, again, "trial {trial}");
            assert_eq!(warm, fresh, "trial {trial}");
        }
    }

    #[test]
    fn scratch_solver_keeps_reference_quality() {
        // The optimized solver may diverge from the reference on
        // multi-slot instances (the exact fast path can pick
        // zero-scaled-profit items the reference DP drops, shifting
        // filter/GreedyAdd choices either way), but it must stay
        // feasible and keep the Lemma IV.1 bound.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = OvScratch::new();
        let eps = 0.1;
        for trial in 0..60 {
            let p = random_problem(&mut rng, 3);
            let s = solve_with(&p, eps, &mut scratch);
            let opt = brute_force(&p);
            assert!(s.feasible(&p), "trial {trial}");
            assert!(
                s.profit >= (1.0 - eps) / 2.0 * opt.profit - 1e-9,
                "trial {trial}: {} < (1-ε)/2 · {}",
                s.profit,
                opt.profit
            );
        }
    }

    #[test]
    fn single_slot_profit_matches_reference() {
        // With one slot there is no duplication: filtering and
        // GreedyAdd see the same per-item profits in both versions, so
        // total profit must match the reference exactly.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(13);
        let mut scratch = OvScratch::new();
        for trial in 0..60 {
            let p = random_problem(&mut rng, 1);
            let s = solve_with(&p, 0.1, &mut scratch);
            let r = crate::reference::solve(&p, 0.1);
            assert!(
                (s.profit - r.profit).abs() < 1e-9 || s.profit > r.profit,
                "trial {trial}: optimized {} vs reference {}",
                s.profit,
                r.profit
            );
            assert!(s.feasible(&p), "trial {trial}");
        }
    }

    #[test]
    fn brute_force_is_optimal_on_known_instance() {
        let p = OvProblem {
            capacities: vec![10, 10],
            items: vec![
                OvItem::pair(6, (0, 6.0), (1, 4.0)),
                OvItem::pair(6, (0, 5.0), (1, 5.0)),
                OvItem::single(4, 0, 3.0),
            ],
        };
        let s = brute_force(&p);
        // item0→0 (6), item1→1 (5), item2→0 (3) = 14, weights 10/6 ok.
        assert!((s.profit - 14.0).abs() < 1e-9);
        assert!(s.feasible(&p));
    }
}
