//! Exact 0/1 knapsack by depth-first branch-and-bound with the
//! fractional (Dantzig) upper bound.
//!
//! Originally a recursive test oracle, now a production solver: the
//! search runs on an explicit stack (recursion depth was O(n) on
//! adversarial equal-ratio instances — enough to overflow the shrunken
//! stacks of `strict-invariants` test builds) and reuses a caller-owned
//! [`BnbScratch`], so the dispatcher ([`crate::solvers::solve_auto`])
//! can run it per slot with zero allocations. The budgeted entry point
//! caps the node count so worst-case exponential instances degrade into
//! an FPTAS fallback instead of a latency cliff.

use crate::item::{Item, Solution};
use crate::scratch::{BnbFrame, BnbScratch};

/// Exact solver. `O(2^n)` worst case but aggressively pruned; practical
/// into the hundreds of items for non-adversarial profit/weight mixes.
///
/// ```
/// use netmaster_knapsack::{branch_and_bound, Item};
///
/// let items = [Item::new(60.0, 10), Item::new(100.0, 20), Item::new(120.0, 30)];
/// let sol = branch_and_bound(&items, 50);
/// assert_eq!(sol.profit, 220.0);
/// assert_eq!(sol.chosen, vec![1, 2]);
/// ```
///
/// Allocates a fresh workspace; hot paths should hold a [`BnbScratch`]
/// and call [`branch_and_bound_with`].
pub fn branch_and_bound(items: &[Item], capacity: u64) -> Solution {
    branch_and_bound_with(items, capacity, &mut BnbScratch::new())
}

/// [`branch_and_bound`] reusing a caller-owned workspace. Same search,
/// same solution; the order/stack/path/incumbent buffers live in
/// `scratch` and are reused across calls.
// lint:hot-path
pub fn branch_and_bound_with(items: &[Item], capacity: u64, scratch: &mut BnbScratch) -> Solution {
    branch_and_bound_budgeted(items, capacity, usize::MAX, scratch)
        // lint:allow(panic-hygiene) None only signals an exhausted budget, and usize::MAX never exhausts
        .expect("unbounded search cannot exhaust its budget")
}

/// Dantzig bound from `depth` onward: take remaining items greedily by
/// ratio, the last one fractionally.
fn bound(items: &[Item], order: &[usize], mut depth: usize, mut room: u64, base: f64) -> f64 {
    let mut b = base;
    while depth < order.len() {
        let it = &items[order[depth]];
        if it.weight <= room {
            room -= it.weight;
            b += it.profit;
        } else {
            if it.weight > 0 {
                b += it.profit * room as f64 / it.weight as f64;
            }
            return b;
        }
        depth += 1;
    }
    b
}

/// [`branch_and_bound_with`] that gives up after visiting `node_budget`
/// search nodes, returning `None` instead of a (possibly non-optimal)
/// incumbent. Callers treat `None` as "instance too adversarial for
/// exact search" and fall back to the FPTAS, which keeps per-decision
/// latency flat as instances grow.
// lint:hot-path
pub fn branch_and_bound_budgeted(
    items: &[Item],
    capacity: u64,
    node_budget: usize,
    scratch: &mut BnbScratch,
) -> Option<Solution> {
    let BnbScratch {
        order,
        stack,
        current,
        best,
    } = scratch;
    // Eligible items sorted by ratio (needed for the fractional bound).
    order.clear();
    order
        .extend((0..items.len()).filter(|&i| items[i].profit > 0.0 && items[i].weight <= capacity));
    order.sort_by(|&a, &b| items[b].ratio().total_cmp(&items[a].ratio()));
    if order.is_empty() {
        return Some(Solution::default());
    }
    let n = order.len();

    // Explicit DFS, visiting nodes in exactly the order the old
    // recursion did: incumbent check on entry, Dantzig prune, then the
    // take branch before the skip branch. `current` is the shared path;
    // each frame records the path length at its parent plus its own
    // take/skip decision, so entering a frame first rewinds the path.
    stack.clear();
    current.clear();
    best.clear();
    let mut best_profit = 0.0f64;
    let mut nodes = 0usize;
    stack.push(BnbFrame {
        depth: 0,
        parent_len: 0,
        take: false,
        used: 0,
        profit: 0.0,
    });
    while let Some(f) = stack.pop() {
        nodes += 1;
        if nodes > node_budget {
            return None;
        }
        current.truncate(f.parent_len as usize);
        if f.take {
            current.push(order[f.depth as usize - 1]);
        }
        if f.profit > best_profit {
            best_profit = f.profit;
            best.clear();
            best.extend_from_slice(current);
        }
        let depth = f.depth as usize;
        if depth == n {
            continue;
        }
        if bound(items, order, depth, capacity - f.used, f.profit) <= best_profit + 1e-12 {
            continue; // cannot beat the incumbent
        }
        let it = items[order[depth]];
        let len = current.len() as u32;
        // Skip branch pushed first so the take branch pops first.
        stack.push(BnbFrame {
            depth: f.depth + 1,
            parent_len: len,
            take: false,
            used: f.used,
            profit: f.profit,
        });
        if f.used + it.weight <= capacity {
            stack.push(BnbFrame {
                depth: f.depth + 1,
                parent_len: len,
                take: true,
                used: f.used + it.weight,
                profit: f.profit + it.profit,
            });
        }
    }
    // lint:allow(hot-path-alloc) Solution::chosen is the caller-owned result value, not reusable scratch
    Some(Solution::from_indices(items, best.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{brute_force, sin_knap};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn items(v: &[(f64, u64)]) -> Vec<Item> {
        v.iter().map(|&(p, w)| Item::new(p, w)).collect()
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(123);
        for trial in 0..100 {
            let n = rng.random_range(1..=14);
            let it: Vec<Item> = (0..n)
                .map(|_| Item::new(rng.random_range(0.5..40.0), rng.random_range(1..40)))
                .collect();
            let cap = rng.random_range(1..120);
            let exact = brute_force(&it, cap);
            let bnb = branch_and_bound(&it, cap);
            assert!(
                (exact.profit - bnb.profit).abs() < 1e-9,
                "trial {trial}: {} vs {}",
                exact.profit,
                bnb.profit
            );
            assert!(bnb.feasible(cap));
        }
    }

    #[test]
    fn handles_classic_instance() {
        let it = items(&[(60.0, 10), (100.0, 20), (120.0, 30)]);
        let s = branch_and_bound(&it, 50);
        assert!((s.profit - 220.0).abs() < 1e-9);
        assert_eq!(s.chosen, vec![1, 2]);
    }

    #[test]
    fn scales_to_hundreds_of_items() {
        let mut rng = StdRng::seed_from_u64(7);
        let it: Vec<Item> = (0..300)
            .map(|_| Item::new(rng.random_range(1.0..20.0), rng.random_range(50..5_000)))
            .collect();
        let cap = 100_000;
        let exact = branch_and_bound(&it, cap);
        // The FPTAS must sit within its guarantee of the true optimum.
        let fptas = sin_knap(&it, cap, 0.1);
        assert!(fptas.profit >= 0.9 * exact.profit - 1e-9);
        assert!(fptas.profit <= exact.profit + 1e-9);
        assert!(exact.feasible(cap));
        assert!(exact.profit > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(branch_and_bound(&[], 10), Solution::default());
        let it = items(&[(-1.0, 1), (5.0, 100)]);
        assert_eq!(branch_and_bound(&it, 10).chosen.len(), 0);
        let it = items(&[(5.0, 0)]);
        let s = branch_and_bound(&it, 0);
        assert_eq!(s.chosen, vec![0], "zero-weight item fits zero capacity");
    }

    #[test]
    fn pruning_does_not_lose_optima_on_equal_ratios() {
        // All items share a ratio; the bound equals the optimum along
        // the whole left spine — a classic pruning-bug trap.
        let it = items(&[(10.0, 10), (10.0, 10), (10.0, 10), (10.0, 10)]);
        let s = branch_and_bound(&it, 25);
        assert!((s.profit - 20.0).abs() < 1e-9);
        assert_eq!(s.chosen.len(), 2);
    }

    #[test]
    fn deep_equal_ratio_instance_runs_without_recursion() {
        // 5 000 equal-ratio items: the old recursive left spine would
        // be 5 000 calls deep — far past a strict-invariants test
        // thread's stack. The explicit stack shrugs.
        let it: Vec<Item> = (0..5_000).map(|_| Item::new(1.0, 1)).collect();
        let s = branch_and_bound(&it, 2_500);
        assert!((s.profit - 2_500.0).abs() < 1e-9);
        assert!(s.feasible(2_500));
    }

    #[test]
    fn scratch_reuse_matches_fresh_solves() {
        let mut rng = StdRng::seed_from_u64(321);
        let mut scratch = BnbScratch::new();
        for trial in 0..60 {
            let n = rng.random_range(1..=13);
            let it: Vec<Item> = (0..n)
                .map(|_| Item::new(rng.random_range(0.5..30.0), rng.random_range(1..30)))
                .collect();
            let cap = rng.random_range(1..90);
            let warm = branch_and_bound_with(&it, cap, &mut scratch);
            let fresh = branch_and_bound(&it, cap);
            assert_eq!(
                warm, fresh,
                "trial {trial}: dirty scratch changed the answer"
            );
        }
    }

    #[test]
    fn budget_exhaustion_returns_none_and_generous_budget_matches() {
        // Ratio gaps of 1e-9 sit above the 1e-12 prune tolerance, so the
        // search still finishes — but not in 5 nodes.
        let it: Vec<Item> = (0..40)
            .map(|i| Item::new(10.0 + i as f64 * 1e-9, 10))
            .collect();
        let mut scratch = BnbScratch::new();
        assert_eq!(
            branch_and_bound_budgeted(&it, 190, 5, &mut scratch),
            None,
            "5 nodes cannot finish a 40-item search"
        );
        // A generous budget completes and matches the unbounded search.
        let capped = branch_and_bound_budgeted(&it, 190, usize::MAX - 1, &mut scratch);
        let full = branch_and_bound_with(&it, 190, &mut scratch);
        assert_eq!(capped, Some(full));
    }
}
