//! Exact 0/1 knapsack by depth-first branch-and-bound with the
//! fractional (Dantzig) upper bound.
//!
//! Scales far past the 24-item subset-enumeration oracle, which lets
//! property tests check the FPTAS guarantee on realistically sized
//! instances (hundreds of items), and provides an exact reference for
//! the ablation that measures how much profit ε = 0.1 leaves behind.

use crate::item::{Item, Solution};

/// Exact solver. `O(2^n)` worst case but aggressively pruned; practical
/// into the hundreds of items for non-adversarial profit/weight mixes.
///
/// ```
/// use netmaster_knapsack::{branch_and_bound, Item};
///
/// let items = [Item::new(60.0, 10), Item::new(100.0, 20), Item::new(120.0, 30)];
/// let sol = branch_and_bound(&items, 50);
/// assert_eq!(sol.profit, 220.0);
/// assert_eq!(sol.chosen, vec![1, 2]);
/// ```
pub fn branch_and_bound(items: &[Item], capacity: u64) -> Solution {
    // Eligible items sorted by ratio (needed for the fractional bound).
    let mut order: Vec<usize> = (0..items.len())
        .filter(|&i| items[i].profit > 0.0 && items[i].weight <= capacity)
        .collect();
    order.sort_by(|&a, &b| items[b].ratio().total_cmp(&items[a].ratio()));
    if order.is_empty() {
        return Solution::default();
    }

    struct Ctx<'a> {
        items: &'a [Item],
        order: &'a [usize],
        capacity: u64,
        best_profit: f64,
        best_set: Vec<usize>,
        current: Vec<usize>,
    }

    /// Dantzig bound: take remaining items greedily by ratio, last one
    /// fractionally.
    fn bound(ctx: &Ctx<'_>, mut depth: usize, mut room: u64, base: f64) -> f64 {
        let mut b = base;
        while depth < ctx.order.len() {
            let it = &ctx.items[ctx.order[depth]];
            if it.weight <= room {
                room -= it.weight;
                b += it.profit;
            } else {
                if it.weight > 0 {
                    b += it.profit * room as f64 / it.weight as f64;
                }
                return b;
            }
            depth += 1;
        }
        b
    }

    fn dfs(ctx: &mut Ctx<'_>, depth: usize, used: u64, profit: f64) {
        if profit > ctx.best_profit {
            ctx.best_profit = profit;
            ctx.best_set = ctx.current.clone();
        }
        if depth == ctx.order.len() {
            return;
        }
        if bound(ctx, depth, ctx.capacity - used, profit) <= ctx.best_profit + 1e-12 {
            return; // cannot beat the incumbent
        }
        let idx = ctx.order[depth];
        let it = ctx.items[idx];
        // Branch 1: take the item (if it fits).
        if used + it.weight <= ctx.capacity {
            ctx.current.push(idx);
            dfs(ctx, depth + 1, used + it.weight, profit + it.profit);
            ctx.current.pop();
        }
        // Branch 2: skip it.
        dfs(ctx, depth + 1, used, profit);
    }

    let mut ctx = Ctx {
        items,
        order: &order,
        capacity,
        best_profit: 0.0,
        best_set: Vec::new(),
        current: Vec::new(),
    };
    dfs(&mut ctx, 0, 0, 0.0);
    Solution::from_indices(items, ctx.best_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{brute_force, sin_knap};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn items(v: &[(f64, u64)]) -> Vec<Item> {
        v.iter().map(|&(p, w)| Item::new(p, w)).collect()
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(123);
        for trial in 0..100 {
            let n = rng.random_range(1..=14);
            let it: Vec<Item> = (0..n)
                .map(|_| Item::new(rng.random_range(0.5..40.0), rng.random_range(1..40)))
                .collect();
            let cap = rng.random_range(1..120);
            let exact = brute_force(&it, cap);
            let bnb = branch_and_bound(&it, cap);
            assert!(
                (exact.profit - bnb.profit).abs() < 1e-9,
                "trial {trial}: {} vs {}",
                exact.profit,
                bnb.profit
            );
            assert!(bnb.feasible(cap));
        }
    }

    #[test]
    fn handles_classic_instance() {
        let it = items(&[(60.0, 10), (100.0, 20), (120.0, 30)]);
        let s = branch_and_bound(&it, 50);
        assert!((s.profit - 220.0).abs() < 1e-9);
        assert_eq!(s.chosen, vec![1, 2]);
    }

    #[test]
    fn scales_to_hundreds_of_items() {
        let mut rng = StdRng::seed_from_u64(7);
        let it: Vec<Item> = (0..300)
            .map(|_| Item::new(rng.random_range(1.0..20.0), rng.random_range(50..5_000)))
            .collect();
        let cap = 100_000;
        let exact = branch_and_bound(&it, cap);
        // The FPTAS must sit within its guarantee of the true optimum.
        let fptas = sin_knap(&it, cap, 0.1);
        assert!(fptas.profit >= 0.9 * exact.profit - 1e-9);
        assert!(fptas.profit <= exact.profit + 1e-9);
        assert!(exact.feasible(cap));
        assert!(exact.profit > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(branch_and_bound(&[], 10), Solution::default());
        let it = items(&[(-1.0, 1), (5.0, 100)]);
        assert_eq!(branch_and_bound(&it, 10).chosen.len(), 0);
        let it = items(&[(5.0, 0)]);
        let s = branch_and_bound(&it, 0);
        assert_eq!(s.chosen, vec![0], "zero-weight item fits zero capacity");
    }

    #[test]
    fn pruning_does_not_lose_optima_on_equal_ratios() {
        // All items share a ratio; the bound equals the optimum along
        // the whole left spine — a classic pruning-bug trap.
        let it = items(&[(10.0, 10), (10.0, 10), (10.0, 10), (10.0, 10)]);
        let s = branch_and_bound(&it, 25);
        assert!((s.profit - 20.0).abs() < 1e-9);
        assert_eq!(s.chosen.len(), 2);
    }
}
