//! Single 0/1-knapsack solvers: brute force, capacity DP, greedy, and
//! the Ibarra–Kim profit-scaling FPTAS — the paper's `SinKnap` [13].
//!
//! The DP solvers come in two forms: the classic signature
//! ([`sin_knap`], [`dp_by_capacity`]) which allocates a fresh workspace
//! per call, and the `_with` variants which reuse a caller-owned
//! [`SolverScratch`] — the form the scheduler's hot path uses so a
//! policy performs zero DP-table allocations per planning day. The
//! original allocating implementations are preserved verbatim in
//! [`crate::reference`] as oracles.

use crate::item::{Item, Solution};
use crate::scratch::SolverScratch;

/// Exact solver by subset enumeration. `O(2^n)`; panics above 24 items.
/// Reference oracle for tests.
pub fn brute_force(items: &[Item], capacity: u64) -> Solution {
    assert!(items.len() <= 24, "brute force limited to 24 items");
    let n = items.len();
    let mut best_mask = 0u32;
    let mut best_profit = 0.0f64;
    for mask in 0u32..(1 << n) {
        let mut w = 0u64;
        let mut p = 0.0f64;
        let mut ok = true;
        for (i, item) in items.iter().enumerate() {
            if mask >> i & 1 == 1 {
                w += item.weight;
                if w > capacity {
                    ok = false;
                    break;
                }
                p += item.profit;
            }
        }
        if ok && p > best_profit {
            best_profit = p;
            best_mask = mask;
        }
    }
    let chosen = (0..n).filter(|i| best_mask >> i & 1 == 1).collect();
    Solution::from_indices(items, chosen)
}

/// Strict-mode solution oracle, compiled only under the
/// `strict-invariants` feature: every solution must fit its capacity,
/// and its profit must clear `floor` (the caller states the guarantee
/// being checked — exactness for the DP, the `(1 − ε)`-scaled
/// [`greedy_half`] bound for the FPTAS, both valid because
/// `OPT ≥ greedy_half`).
#[cfg(feature = "strict-invariants")]
fn assert_solution_invariants(capacity: u64, floor: f64, sol: &Solution, what: &str) {
    assert!(
        sol.weight <= capacity,
        "strict-invariants: {what} overpacked: weight {} > capacity {capacity}",
        sol.weight
    );
    let tolerance = 1e-9 * floor.abs().max(1.0);
    assert!(
        sol.profit >= floor - tolerance,
        "strict-invariants: {what} profit {} below its guaranteed floor {floor}",
        sol.profit
    );
}

/// Exact DP over capacity, `O(n · C)` time and space. Only sensible for
/// small integer capacities; the scheduler uses [`sin_knap`] instead.
///
/// Allocates a fresh workspace; hot paths should hold a
/// [`SolverScratch`] and call [`dp_by_capacity_with`].
pub fn dp_by_capacity(items: &[Item], capacity: u64) -> Solution {
    dp_by_capacity_with(items, capacity, &mut SolverScratch::new())
}

/// [`dp_by_capacity`] reusing a caller-owned workspace. Produces the
/// same solution bit-for-bit; the only difference is where the DP
/// tables live.
// lint:hot-path
pub fn dp_by_capacity_with(items: &[Item], capacity: u64, scratch: &mut SolverScratch) -> Solution {
    let cap = capacity as usize;
    let n = items.len();
    let SolverScratch {
        best, choice: keep, ..
    } = scratch;
    // best[w] = max profit with weight exactly ≤ w; keep[i][w] for reconstruction.
    best.clear();
    best.resize(cap + 1, 0.0f64);
    keep.reset(n, cap + 1);
    for (i, item) in items.iter().enumerate() {
        if item.profit <= 0.0 || item.weight > capacity {
            continue;
        }
        let w = item.weight as usize;
        for c in (w..=cap).rev() {
            let cand = best[c - w] + item.profit;
            if cand > best[c] {
                best[c] = cand;
                keep.set(i, c);
            }
        }
    }
    // Reconstruct.
    // lint:allow(hot-path-alloc) Solution::chosen is the caller-owned result value, not reusable scratch
    let mut chosen = Vec::new();
    let mut c = cap;
    for i in (0..n).rev() {
        if keep.get(i, c) {
            chosen.push(i);
            c -= items[i].weight as usize;
        }
    }
    let sol = Solution::from_indices(items, chosen);
    // The exact DP dominates any feasible solution, greedy included.
    #[cfg(feature = "strict-invariants")]
    assert_solution_invariants(
        capacity,
        greedy_half(items, capacity).profit,
        &sol,
        "dp_by_capacity",
    );
    sol
}

/// Greedy by profit-to-weight ratio with the classic "best single item"
/// fallback, a 1/2-approximation.
///
/// Allocates a fresh workspace; hot paths should hold a
/// [`SolverScratch`] and call [`greedy_half_with`].
pub fn greedy_half(items: &[Item], capacity: u64) -> Solution {
    greedy_half_with(items, capacity, &mut SolverScratch::new())
}

/// [`greedy_half`] reusing a caller-owned workspace for the ratio
/// order. Same solution; no per-call sort buffer allocation.
// lint:hot-path
pub fn greedy_half_with(items: &[Item], capacity: u64, scratch: &mut SolverScratch) -> Solution {
    let order = &mut scratch.order;
    order.clear();
    order
        .extend((0..items.len()).filter(|&i| items[i].profit > 0.0 && items[i].weight <= capacity));
    order.sort_by(|&a, &b| items[b].ratio().total_cmp(&items[a].ratio()));
    // lint:allow(hot-path-alloc) Solution::chosen is the caller-owned result value, not reusable scratch
    let mut chosen = Vec::new();
    let mut used = 0u64;
    for &i in order.iter() {
        if used + items[i].weight <= capacity {
            used += items[i].weight;
            chosen.push(i);
        }
    }
    let greedy = Solution::from_indices(items, chosen);
    // Compare against the single most profitable item.
    let best_single = (0..items.len())
        .filter(|&i| items[i].weight <= capacity && items[i].profit > 0.0)
        .max_by(|&a, &b| items[a].profit.total_cmp(&items[b].profit));
    match best_single {
        // lint:allow(hot-path-alloc) single-element result value, not reusable scratch
        Some(i) if items[i].profit > greedy.profit => Solution::from_indices(items, vec![i]),
        _ => greedy,
    }
}

/// Greedy *filling* pass: adds any still-fitting items (by ratio) to an
/// existing selection. The paper's `GreedyAdd` step.
///
/// Builds the ratio order on the fly; callers that already hold items
/// in ratio order (like the overlapped solver's per-slot lists) should
/// use [`greedy_add_presorted`] and skip the sort entirely. Membership
/// in `existing` is tested by binary search over its sorted index list
/// rather than the `HashSet` the original implementation rebuilt per
/// call (preserved in [`crate::reference::greedy_add`]).
pub fn greedy_add(items: &[Item], capacity: u64, existing: &mut Solution) {
    existing.chosen.sort_unstable();
    let mut order: Vec<usize> = (0..items.len())
        .filter(|&i| items[i].profit > 0.0 && existing.chosen.binary_search(&i).is_err())
        .collect();
    order.sort_by(|&a, &b| items[b].ratio().total_cmp(&items[a].ratio()));
    greedy_add_presorted(items, capacity, existing, &order);
}

/// [`greedy_add`] taking a precomputed fill order: `order` lists
/// distinct candidate indices in the sequence to try (normally
/// profit-to-weight descending). Indices already in `existing.chosen`
/// (which must be sorted ascending, as [`Solution::from_indices`]
/// guarantees) and non-positive-profit items are skipped.
pub fn greedy_add_presorted(
    items: &[Item],
    capacity: u64,
    existing: &mut Solution,
    order: &[usize],
) {
    // `order` holds distinct indices, so only membership at entry can
    // repeat an item; the pre-existing prefix of `chosen` stays sorted
    // while new picks are appended, keeping the binary search valid.
    let initial = existing.chosen.len();
    for &i in order {
        if items[i].profit <= 0.0 || existing.chosen[..initial].binary_search(&i).is_ok() {
            continue;
        }
        if existing.weight + items[i].weight <= capacity {
            existing.weight += items[i].weight;
            existing.profit += items[i].profit;
            existing.chosen.push(i);
        }
    }
    existing.chosen.sort_unstable();
}

/// The Ibarra–Kim FPTAS (`SinKnap` in the paper): profit-scaling dynamic
/// programming guaranteeing profit ≥ `(1 − ε) · OPT` in
/// `O(n² ⌈n/ε⌉)` time.
///
/// `eps` is clamped to `[1e-6, 0.999]`. Items with non-positive profit
/// or weight exceeding `capacity` are never selected.
///
/// ```
/// use netmaster_knapsack::{sin_knap, Item};
///
/// let items = [Item::new(60.0, 10), Item::new(100.0, 20), Item::new(120.0, 30)];
/// let sol = sin_knap(&items, 50, 0.1);
/// assert!(sol.profit >= 0.9 * 220.0); // within (1-ε) of the optimum
/// assert!(sol.weight <= 50);
/// ```
///
/// Allocates a fresh workspace; hot paths should hold a
/// [`SolverScratch`] and call [`sin_knap_with`].
pub fn sin_knap(items: &[Item], capacity: u64, eps: f64) -> Solution {
    sin_knap_with(items, capacity, eps, &mut SolverScratch::new())
}

/// [`sin_knap`] reusing a caller-owned workspace — the scheduler's hot
/// path. Two optimizations over [`crate::reference::sin_knap`]:
///
/// * **Capacity-slack fast path**: when every eligible item fits
///   together (`Σ weights ≤ capacity`) the answer is trivially *all*
///   eligible items — the exact optimum, no DP at all. This is the
///   common case for light screen-off workloads against a whole-slot
///   byte budget. (The reference DP may return a subset with equal
///   scaled but lower real profit, since items whose profit rounds to
///   zero under scaling never set a choice flag — the fast path's
///   answer is never worse.)
/// * When capacity binds, the profit-scaling DP runs with `scratch`'s
///   reused `min_weight` table and bit-packed choice matrix (1/8 the
///   memory of the reference `Vec<bool>`), producing the same solution
///   bit-for-bit. Three prunes keep that identity while skipping work
///   the reference wastes: the table is truncated at the Dantzig bound
///   on scaled profit, each item's inner loop stops at the reachable
///   prefix sum, and states heavier than `capacity` are never stored
///   (transitions only add weight, so they cannot reach a feasible
///   reconstruction chain).
// lint:hot-path
pub fn sin_knap_with(
    items: &[Item],
    capacity: u64,
    eps: f64,
    scratch: &mut SolverScratch,
) -> Solution {
    let eps = eps.clamp(1e-6, 0.999);
    let SolverScratch {
        min_weight,
        choice,
        eligible,
        scaled,
        order,
        ..
    } = scratch;
    // Eligible items only.
    eligible.clear();
    let mut total_weight: u128 = 0;
    for (i, item) in items.iter().enumerate() {
        if item.profit > 0.0 && item.weight <= capacity {
            eligible.push(i);
            total_weight += item.weight as u128;
        }
    }
    if eligible.is_empty() {
        return Solution::default();
    }
    // Fast path: all eligible items fit at once — take them all.
    if total_weight <= capacity as u128 {
        netmaster_obs::counter!(netmaster_obs::names::KNAPSACK_FASTPATH_TOTAL);
        // lint:allow(hot-path-alloc) the result takes ownership of the index list; cloning keeps scratch reusable
        let sol = Solution::from_indices(items, eligible.clone());
        // Taking every eligible item dominates any feasible subset.
        #[cfg(feature = "strict-invariants")]
        assert_solution_invariants(
            capacity,
            greedy_half(items, capacity).profit,
            &sol,
            "sin_knap fast path",
        );
        return sol;
    }
    netmaster_obs::counter!(netmaster_obs::names::KNAPSACK_DP_TOTAL);
    let n = eligible.len();
    let p_max = eligible
        .iter()
        .map(|&i| items[i].profit)
        .fold(0.0f64, f64::max);
    // Scale factor K = ε·P/n ⇒ every item's scaled profit ≤ n/ε.
    let k = eps * p_max / n as f64;
    scaled.clear();
    scaled.extend(
        eligible
            .iter()
            .map(|&i| (items[i].profit / k).floor() as u64),
    );
    let p_total: u64 = scaled.iter().sum();

    // Dantzig upper bound on the *scaled* profit any feasible subset
    // can reach: greedy by scaled ratio, last item fractional (rounded
    // up, in integer arithmetic, so it can never under-bound). Every
    // DP cell above the bound would stay unreachable-within-capacity,
    // so the table is truncated there — typically a multiple smaller
    // than the reference's `p_total + 1` cells when capacity binds.
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| {
        let (pa, wa) = (scaled[a] as u128, items[eligible[a]].weight as u128);
        let (pb, wb) = (scaled[b] as u128, items[eligible[b]].weight as u128);
        (pb * wa).cmp(&(pa * wb)) // scaled ratio, descending
    });
    let mut room = capacity;
    let mut ub: u64 = 0;
    for &j in order.iter() {
        let w = items[eligible[j]].weight;
        if w <= room {
            room -= w;
            ub += scaled[j];
        } else {
            ub += (scaled[j] as u128 * room as u128).div_ceil(w as u128) as u64;
            break;
        }
    }

    // min_weight[q] = least weight achieving scaled profit exactly q.
    const INF: u64 = u64::MAX;
    let cells = (p_total.min(ub) + 1) as usize;
    netmaster_obs::gauge_max(
        netmaster_obs::names::KNAPSACK_DP_CELLS_HIGHWATER,
        cells as f64,
    );
    netmaster_obs::gauge_max(
        netmaster_obs::names::KNAPSACK_CHOICE_BITS_HIGHWATER,
        (n * cells) as f64,
    );
    min_weight.clear();
    min_weight.resize(cells, INF);
    choice.reset(n, cells); // choice[j][q]
    min_weight[0] = 0;
    // Two further prunes, both leaving the ≤-capacity table — and so
    // the reconstruction — bit-identical to the reference:
    // * reachable prefix: after items `0..=j` no cell above the prefix
    //   sum of their scaled profits can be non-INF, so the inner loop
    //   stops there instead of at `cells`;
    // * capacity prune: transitions only add weight, so a state heavier
    //   than `capacity` can never sit on the reconstruction chain of a
    //   within-capacity state — skip storing it at all.
    let mut reach: u64 = 0;
    for (j, &idx) in eligible.iter().enumerate() {
        let (pj, wj) = (scaled[j] as usize, items[idx].weight);
        reach = (reach + scaled[j]).min(cells as u64 - 1);
        let hi = reach as usize;
        let base = choice.row_base(j);
        for q in (pj..=hi).rev() {
            let from = min_weight[q - pj];
            if from != INF {
                let cand = from + wj;
                if cand <= capacity && cand < min_weight[q] {
                    min_weight[q] = cand;
                    choice.set_bit(base + q);
                }
            }
        }
    }
    // Best achievable scaled profit within capacity.
    let best_q = (0..cells)
        .rev()
        .find(|&q| min_weight[q] <= capacity)
        .unwrap_or(0);
    // Reconstruct.
    // lint:allow(hot-path-alloc) Solution::chosen is the caller-owned result value, not reusable scratch
    let mut chosen = Vec::new();
    let mut q = best_q;
    for j in (0..n).rev() {
        if choice.get(j, q) {
            chosen.push(eligible[j]);
            q -= scaled[j] as usize;
        }
    }
    debug_assert_eq!(q, 0, "reconstruction must land at profit 0");
    let sol = Solution::from_indices(items, chosen);
    // FPTAS bound: profit ≥ (1 − ε)·OPT and OPT ≥ greedy_half, so the
    // scaled greedy profit is a sound runtime floor.
    #[cfg(feature = "strict-invariants")]
    assert_solution_invariants(
        capacity,
        (1.0 - eps) * greedy_half(items, capacity).profit,
        &sol,
        "sin_knap DP path",
    );
    sol
}

/// Which arm of [`solve_auto`] answered an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Capacity-slack fast path: every eligible item fit together, the
    /// exact optimum with no search at all.
    Fastpath,
    /// Exact branch-and-bound: small instance solved to optimality
    /// within its node budget.
    Bnb,
    /// Profit-quantized `(1 − ε)` DP: the sparse Pareto frontier, or
    /// its dense fallback when the frontier outgrows its arena budget.
    Dp,
}

/// Arena-state budget past which [`quantized_dp`] abandons the sparse
/// frontier for the dense table — bounds worst-case memory at ~24 MB
/// of states while the dense path stays within the (truncated,
/// bit-packed) footprint [`sin_knap_with`] already pays.
const QDP_ARENA_BUDGET: usize = 1 << 20;

/// Profit-quantized FPTAS over a *sparse* Pareto frontier: the same
/// Ibarra–Kim scaling as [`sin_knap_with`], but instead of a dense
/// `min_weight[q]` table the solver keeps only states `(q, w)` that no
/// other state dominates (higher-or-equal scaled profit at
/// lower-or-equal weight — Nemhauser–Ullmann). On the slot-shaped
/// instances the planner emits, reachable profit levels are sparse and
/// the frontier stays tiny next to `p_total` cells.
///
/// Same `(1 − ε)·OPT` guarantee as [`sin_knap_with`]; the chosen *set*
/// may differ (both land on the maximum feasible scaled profit, but may
/// break real-profit ties differently), so oracles should compare
/// profit bounds, not sets. Deterministic: ties keep the older state.
// lint:hot-path
pub fn quantized_dp(
    items: &[Item],
    capacity: u64,
    eps: f64,
    scratch: &mut SolverScratch,
) -> Solution {
    use crate::scratch::QState;
    let eps = eps.clamp(1e-6, 0.999);
    const NO_PARENT: u32 = u32::MAX;
    let best_idx: Option<u32> = {
        let SolverScratch {
            eligible,
            scaled,
            arena,
            frontier,
            merged,
            ..
        } = &mut *scratch;
        eligible.clear();
        eligible.extend(
            (0..items.len()).filter(|&i| items[i].profit > 0.0 && items[i].weight <= capacity),
        );
        if eligible.is_empty() {
            return Solution::default();
        }
        let n = eligible.len();
        let p_max = eligible
            .iter()
            .map(|&i| items[i].profit)
            .fold(0.0f64, f64::max);
        let k = eps * p_max / n as f64;
        scaled.clear();
        scaled.extend(
            eligible
                .iter()
                .map(|&i| (items[i].profit / k).floor() as u64),
        );

        arena.clear();
        frontier.clear();
        arena.push(QState {
            w: 0,
            q: 0,
            item: u32::MAX,
            parent: NO_PARENT,
        });
        frontier.push(0);
        let mut overflow = false;
        for j in 0..n {
            let (pj, wj) = (scaled[j], items[eligible[j]].weight);
            if pj == 0 {
                // A zero-scaled item can never raise q and never lower
                // the min weight at a level (ties keep the old state).
                continue;
            }
            // Merge `frontier` with `frontier ⊕ item j`, scanning q
            // descending and keeping a state only when strictly lighter
            // than everything at higher-or-equal profit. Equal-q ties
            // process the lighter state first; full ties keep the old.
            merged.clear();
            let (mut i, mut t) = (frontier.len(), frontier.len());
            let mut best_w = u64::MAX;
            loop {
                let take = loop {
                    if t == 0 {
                        break None;
                    }
                    let s = arena[frontier[t - 1] as usize];
                    if s.w + wj <= capacity {
                        break Some((s.q + pj, s.w + wj, frontier[t - 1]));
                    }
                    t -= 1;
                };
                let old = if i > 0 {
                    let s = arena[frontier[i - 1] as usize];
                    Some((s.q, s.w, frontier[i - 1]))
                } else {
                    None
                };
                let pick_take = match (old, take) {
                    (None, None) => break,
                    (Some(_), None) => false,
                    (None, Some(_)) => true,
                    (Some((oq, ow, _)), Some((tq, tw, _))) => {
                        if tq != oq {
                            tq > oq
                        } else {
                            tw < ow // equal profit: lighter first; full tie: old first
                        }
                    }
                };
                if pick_take {
                    // lint:allow(panic-hygiene) pick_take is only true when the take side exists (merge guard above)
                    let (q, w, parent) = take.expect("picked side is present");
                    t -= 1;
                    if w < best_w {
                        if arena.len() >= QDP_ARENA_BUDGET {
                            overflow = true;
                            break;
                        }
                        arena.push(QState {
                            w,
                            q,
                            item: j as u32,
                            parent,
                        });
                        merged.push((arena.len() - 1) as u32);
                        best_w = w;
                    }
                } else {
                    // lint:allow(panic-hygiene) !pick_take requires the old side to exist (merge guard above)
                    let (_, w, idx) = old.expect("picked side is present");
                    i -= 1;
                    if w < best_w {
                        merged.push(idx);
                        best_w = w;
                    }
                }
            }
            if overflow {
                break;
            }
            frontier.clear();
            frontier.extend(merged.iter().rev().copied());
        }
        netmaster_obs::gauge_max(
            netmaster_obs::names::KNAPSACK_QDP_STATES_HIGHWATER,
            arena.len() as f64,
        );
        if overflow {
            None
        } else {
            netmaster_obs::counter!(netmaster_obs::names::KNAPSACK_DP_TOTAL);
            frontier.last().copied()
        }
    };
    let Some(best) = best_idx else {
        // Frontier outgrew its arena: the dense (truncated, bit-packed)
        // table is the bounded-memory fallback. It counts its own DP
        // tick and keeps the same guarantee.
        return sin_knap_with(items, capacity, eps, scratch);
    };
    // Reconstruct by walking the parent chain.
    // lint:allow(hot-path-alloc) Solution::chosen is the caller-owned result value, not reusable scratch
    let mut chosen = Vec::new();
    let mut cur = best;
    while cur != NO_PARENT {
        let s = scratch.arena[cur as usize];
        if s.item != u32::MAX {
            chosen.push(scratch.eligible[s.item as usize]);
        }
        cur = s.parent;
    }
    let sol = Solution::from_indices(items, chosen);
    #[cfg(feature = "strict-invariants")]
    assert_solution_invariants(
        capacity,
        (1.0 - eps) * greedy_half(items, capacity).profit,
        &sol,
        "quantized_dp",
    );
    sol
}

/// Exact search is attempted up to this many eligible items…
const BNB_MAX_N: usize = 40;
/// …with a node budget linear in the item count, so adversarial
/// equal-ratio instances fall through to the FPTAS at flat latency
/// instead of going exponential.
const BNB_NODES_PER_ITEM: usize = 64;

/// The cost-model dispatcher: picks the cheapest solver that fits the
/// instance, recording its choice in the obs counters and in
/// [`SolverScratch::last_solver`].
///
/// * **Slack fast path** — every eligible item fits together: take them
///   all (exact, no search).
/// * **Exact branch-and-bound** — at most [`BNB_MAX_N`] eligible items:
///   budgeted iterative search; optimal when it completes.
/// * **Quantized FPTAS** — everything else (and exhausted budgets):
///   [`quantized_dp`], guarantee `(1 − ε)·OPT`.
///
/// The returned profit is therefore always ≥ `(1 − ε)·OPT`, and exact
/// whenever the fast path or branch-and-bound answered.
// lint:hot-path
pub fn solve_auto(
    items: &[Item],
    capacity: u64,
    eps: f64,
    scratch: &mut SolverScratch,
) -> Solution {
    scratch.last_kind = None;
    scratch.eligible.clear();
    let mut total_weight: u128 = 0;
    for (i, item) in items.iter().enumerate() {
        if item.profit > 0.0 && item.weight <= capacity {
            scratch.eligible.push(i);
            total_weight += item.weight as u128;
        }
    }
    if scratch.eligible.is_empty() {
        return Solution::default();
    }
    if total_weight <= capacity as u128 {
        netmaster_obs::counter!(netmaster_obs::names::KNAPSACK_FASTPATH_TOTAL);
        scratch.last_kind = Some(SolverKind::Fastpath);
        // lint:allow(hot-path-alloc) the result takes ownership of the index list; cloning keeps scratch reusable
        let sol = Solution::from_indices(items, scratch.eligible.clone());
        #[cfg(feature = "strict-invariants")]
        assert_solution_invariants(
            capacity,
            greedy_half(items, capacity).profit,
            &sol,
            "solve_auto fast path",
        );
        return sol;
    }
    let n = scratch.eligible.len();
    if n <= BNB_MAX_N {
        if let Some(sol) = crate::bnb::branch_and_bound_budgeted(
            items,
            capacity,
            BNB_NODES_PER_ITEM * n,
            &mut scratch.bnb,
        ) {
            netmaster_obs::counter!(netmaster_obs::names::KNAPSACK_BNB_TOTAL);
            scratch.last_kind = Some(SolverKind::Bnb);
            // Exact ⇒ dominates greedy, same floor as the exact DP.
            #[cfg(feature = "strict-invariants")]
            assert_solution_invariants(
                capacity,
                greedy_half(items, capacity).profit,
                &sol,
                "solve_auto branch-and-bound",
            );
            return sol;
        }
    }
    let sol = quantized_dp(items, capacity, eps, scratch);
    scratch.last_kind = Some(SolverKind::Dp);
    sol
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(v: &[(f64, u64)]) -> Vec<Item> {
        v.iter().map(|&(p, w)| Item::new(p, w)).collect()
    }

    /// Every oracle test in this module doubles as a strict-invariants
    /// exercise when CI compiles the feature in; this pins that the
    /// feature run was not vacuous.
    #[test]
    #[cfg(feature = "strict-invariants")]
    #[allow(clippy::assertions_on_constants)]
    fn strict_invariants_are_compiled_in() {
        assert!(crate::STRICT_INVARIANTS);
    }

    #[test]
    fn brute_force_small_instance() {
        let it = items(&[(60.0, 10), (100.0, 20), (120.0, 30)]);
        let s = brute_force(&it, 50);
        assert_eq!(s.chosen, vec![1, 2]);
        assert!((s.profit - 220.0).abs() < 1e-9);
    }

    #[test]
    fn dp_matches_brute_force() {
        let it = items(&[(3.0, 4), (7.0, 5), (2.0, 1), (9.0, 7), (5.0, 3)]);
        for cap in 0..=20 {
            let a = brute_force(&it, cap);
            let b = dp_by_capacity(&it, cap);
            assert!(
                (a.profit - b.profit).abs() < 1e-9,
                "cap {cap}: {} vs {}",
                a.profit,
                b.profit
            );
            assert!(b.feasible(cap));
        }
    }

    #[test]
    fn dp_skips_oversized_and_worthless_items() {
        let it = items(&[(10.0, 100), (-5.0, 1), (0.0, 1), (4.0, 2)]);
        let s = dp_by_capacity(&it, 10);
        assert_eq!(s.chosen, vec![3]);
    }

    #[test]
    fn greedy_half_is_at_least_half_optimal() {
        // Adversarial case for plain greedy: one big item beats ratio-greedy.
        let it = items(&[(1.0, 1), (99.0, 100)]);
        let s = greedy_half(&it, 100);
        assert!(
            (s.profit - 99.0).abs() < 1e-9,
            "fallback to best single item"
        );
        let opt = brute_force(&it, 100);
        assert!(s.profit >= 0.5 * opt.profit);
    }

    #[test]
    fn greedy_add_fills_leftover_capacity() {
        let it = items(&[(5.0, 5), (4.0, 4), (3.0, 3)]);
        let mut s = Solution::from_indices(&it, vec![0]);
        greedy_add(&it, 12, &mut s);
        assert_eq!(s.chosen, vec![0, 1, 2]);
        assert_eq!(s.weight, 12);
        // Never exceeds capacity.
        let mut s2 = Solution::from_indices(&it, vec![0]);
        greedy_add(&it, 8, &mut s2);
        assert!(s2.weight <= 8);
    }

    #[test]
    fn sin_knap_exact_on_small_eps() {
        let it = items(&[(60.0, 10), (100.0, 20), (120.0, 30)]);
        let s = sin_knap(&it, 50, 0.01);
        assert!((s.profit - 220.0).abs() < 1e-9);
        assert!(s.feasible(50));
    }

    #[test]
    fn sin_knap_respects_epsilon_guarantee() {
        let it = items(&[
            (13.0, 9),
            (8.0, 5),
            (17.0, 14),
            (4.0, 2),
            (9.0, 6),
            (11.0, 8),
            (6.0, 4),
        ]);
        for &eps in &[0.05, 0.1, 0.3, 0.5, 0.9] {
            for cap in [5u64, 10, 20, 30] {
                let opt = brute_force(&it, cap);
                let s = sin_knap(&it, cap, eps);
                assert!(s.feasible(cap));
                assert!(
                    s.profit >= (1.0 - eps) * opt.profit - 1e-9,
                    "eps={eps} cap={cap}: {} < (1-ε)·{}",
                    s.profit,
                    opt.profit
                );
            }
        }
    }

    #[test]
    fn sin_knap_empty_and_degenerate() {
        assert_eq!(sin_knap(&[], 10, 0.1), Solution::default());
        let it = items(&[(-1.0, 1), (0.0, 1)]);
        assert_eq!(sin_knap(&it, 10, 0.1).chosen.len(), 0);
        // All items oversized.
        let it = items(&[(5.0, 100)]);
        assert_eq!(sin_knap(&it, 10, 0.1).chosen.len(), 0);
    }

    #[test]
    fn sin_knap_zero_weight_items_always_fit() {
        let it = items(&[(5.0, 0), (3.0, 0), (7.0, 10)]);
        let s = sin_knap(&it, 10, 0.05);
        assert!((s.profit - 15.0).abs() < 0.8); // within FPTAS slack
        assert_eq!(s.chosen.len(), 3);
    }

    #[test]
    fn fast_path_takes_everything_under_slack_capacity() {
        // Total eligible weight 6 ≤ capacity 100: the optimum is all
        // positive-profit fitting items, no DP needed.
        let it = items(&[(5.0, 1), (0.5, 2), (-1.0, 1), (3.0, 3), (2.0, 200)]);
        let mut scratch = SolverScratch::new();
        let s = sin_knap_with(&it, 100, 0.3, &mut scratch);
        assert_eq!(s.chosen, vec![0, 1, 3]);
        assert!((s.profit - 8.5).abs() < 1e-9);
        // The fast path is exact, so it can only beat the FPTAS bound.
        let r = crate::reference::sin_knap(&it, 100, 0.3);
        assert!(s.profit >= r.profit - 1e-9);
    }

    #[test]
    fn scratch_solvers_match_reference_across_reuse() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        let mut scratch = SolverScratch::new();
        for trial in 0..80 {
            let n = rng.random_range(1..=15);
            let it: Vec<Item> = (0..n)
                .map(|_| Item::new(rng.random_range(-5.0..50.0), rng.random_range(1..30u64)))
                .collect();
            let cap = rng.random_range(1..60);
            // Capacity DP: bit-identical regardless of path.
            assert_eq!(
                dp_by_capacity_with(&it, cap, &mut scratch),
                crate::reference::dp_by_capacity(&it, cap),
                "trial {trial}"
            );
            let s_new = sin_knap_with(&it, cap, 0.1, &mut scratch);
            let s_ref = crate::reference::sin_knap(&it, cap, 0.1);
            let eligible_w: u64 = it
                .iter()
                .filter(|x| x.profit > 0.0 && x.weight <= cap)
                .map(|x| x.weight)
                .sum();
            if eligible_w <= cap {
                // Fast path: exact optimum over eligible items — never
                // worse than the reference DP, and takes everything.
                let eligible_p: f64 = it
                    .iter()
                    .filter(|x| x.profit > 0.0 && x.weight <= cap)
                    .map(|x| x.profit)
                    .sum();
                assert!((s_new.profit - eligible_p).abs() < 1e-9, "trial {trial}");
                assert!(s_new.profit >= s_ref.profit - 1e-9, "trial {trial}");
            } else {
                // DP path: same tables, same traversal — bit-identical.
                assert_eq!(s_new, s_ref, "trial {trial}");
            }
        }
    }

    #[test]
    fn greedy_add_matches_reference_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..80 {
            let n = rng.random_range(1..=15usize);
            let it: Vec<Item> = (0..n)
                .map(|_| Item::new(rng.random_range(-5.0..50.0), rng.random_range(0..30u64)))
                .collect();
            let cap = rng.random_range(1..60);
            let seed: Vec<usize> = (0..n).filter(|_| rng.random_bool(0.3)).collect();
            let mut a = Solution::from_indices(&it, seed.clone());
            let mut b = Solution::from_indices(&it, seed);
            greedy_add(&it, cap, &mut a);
            crate::reference::greedy_add(&it, cap, &mut b);
            assert_eq!(a, b, "trial {trial}");
        }
    }

    #[test]
    fn solvers_agree_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..50 {
            let n = rng.random_range(1..=12);
            let it: Vec<Item> = (0..n)
                .map(|_| Item::new(rng.random_range(1.0..50.0), rng.random_range(1..30)))
                .collect();
            let cap = rng.random_range(1..80);
            let opt = brute_force(&it, cap);
            let dp = dp_by_capacity(&it, cap);
            let fptas = sin_knap(&it, cap, 0.1);
            let gr = greedy_half(&it, cap);
            assert!((dp.profit - opt.profit).abs() < 1e-9, "trial {trial}");
            assert!(fptas.profit >= 0.9 * opt.profit - 1e-9, "trial {trial}");
            assert!(gr.profit >= 0.5 * opt.profit - 1e-9, "trial {trial}");
            for s in [&dp, &fptas, &gr] {
                assert!(s.feasible(cap), "trial {trial}");
            }
        }
    }
}
