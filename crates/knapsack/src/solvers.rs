//! Single 0/1-knapsack solvers: brute force, capacity DP, greedy, and
//! the Ibarra–Kim profit-scaling FPTAS — the paper's `SinKnap` [13].

use crate::item::{Item, Solution};

/// Exact solver by subset enumeration. `O(2^n)`; panics above 24 items.
/// Reference oracle for tests.
pub fn brute_force(items: &[Item], capacity: u64) -> Solution {
    assert!(items.len() <= 24, "brute force limited to 24 items");
    let n = items.len();
    let mut best_mask = 0u32;
    let mut best_profit = 0.0f64;
    for mask in 0u32..(1 << n) {
        let mut w = 0u64;
        let mut p = 0.0f64;
        let mut ok = true;
        for (i, item) in items.iter().enumerate() {
            if mask >> i & 1 == 1 {
                w += item.weight;
                if w > capacity {
                    ok = false;
                    break;
                }
                p += item.profit;
            }
        }
        if ok && p > best_profit {
            best_profit = p;
            best_mask = mask;
        }
    }
    let chosen = (0..n).filter(|i| best_mask >> i & 1 == 1).collect();
    Solution::from_indices(items, chosen)
}

/// Exact DP over capacity, `O(n · C)` time and space. Only sensible for
/// small integer capacities; the scheduler uses [`sin_knap`] instead.
pub fn dp_by_capacity(items: &[Item], capacity: u64) -> Solution {
    let cap = capacity as usize;
    let n = items.len();
    // best[w] = max profit with weight exactly ≤ w; keep[i][w] for reconstruction.
    let mut best = vec![0.0f64; cap + 1];
    let mut keep = vec![false; n * (cap + 1)];
    for (i, item) in items.iter().enumerate() {
        if item.profit <= 0.0 || item.weight > capacity {
            continue;
        }
        let w = item.weight as usize;
        for c in (w..=cap).rev() {
            let cand = best[c - w] + item.profit;
            if cand > best[c] {
                best[c] = cand;
                keep[i * (cap + 1) + c] = true;
            }
        }
    }
    // Reconstruct.
    let mut chosen = Vec::new();
    let mut c = cap;
    for i in (0..n).rev() {
        if keep[i * (cap + 1) + c] {
            chosen.push(i);
            c -= items[i].weight as usize;
        }
    }
    Solution::from_indices(items, chosen)
}

/// Greedy by profit-to-weight ratio with the classic "best single item"
/// fallback, a 1/2-approximation.
pub fn greedy_half(items: &[Item], capacity: u64) -> Solution {
    let mut order: Vec<usize> = (0..items.len())
        .filter(|&i| items[i].profit > 0.0 && items[i].weight <= capacity)
        .collect();
    order.sort_by(|&a, &b| items[b].ratio().total_cmp(&items[a].ratio()));
    let mut chosen = Vec::new();
    let mut used = 0u64;
    for &i in &order {
        if used + items[i].weight <= capacity {
            used += items[i].weight;
            chosen.push(i);
        }
    }
    let greedy = Solution::from_indices(items, chosen);
    // Compare against the single most profitable item.
    let best_single = (0..items.len())
        .filter(|&i| items[i].weight <= capacity && items[i].profit > 0.0)
        .max_by(|&a, &b| items[a].profit.total_cmp(&items[b].profit));
    match best_single {
        Some(i) if items[i].profit > greedy.profit => {
            Solution::from_indices(items, vec![i])
        }
        _ => greedy,
    }
}

/// Greedy *filling* pass: adds any still-fitting items (by ratio) to an
/// existing selection. The paper's `GreedyAdd` step.
pub fn greedy_add(items: &[Item], capacity: u64, existing: &mut Solution) {
    let in_set: std::collections::HashSet<usize> = existing.chosen.iter().copied().collect();
    let mut order: Vec<usize> = (0..items.len())
        .filter(|i| !in_set.contains(i))
        .filter(|&i| items[i].profit > 0.0)
        .collect();
    order.sort_by(|&a, &b| items[b].ratio().total_cmp(&items[a].ratio()));
    for &i in &order {
        if existing.weight + items[i].weight <= capacity {
            existing.weight += items[i].weight;
            existing.profit += items[i].profit;
            existing.chosen.push(i);
        }
    }
    existing.chosen.sort_unstable();
}

/// The Ibarra–Kim FPTAS (`SinKnap` in the paper): profit-scaling dynamic
/// programming guaranteeing profit ≥ `(1 − ε) · OPT` in
/// `O(n² ⌈n/ε⌉)` time.
///
/// `eps` is clamped to `[1e-6, 0.999]`. Items with non-positive profit
/// or weight exceeding `capacity` are never selected.
///
/// ```
/// use netmaster_knapsack::{sin_knap, Item};
///
/// let items = [Item::new(60.0, 10), Item::new(100.0, 20), Item::new(120.0, 30)];
/// let sol = sin_knap(&items, 50, 0.1);
/// assert!(sol.profit >= 0.9 * 220.0); // within (1-ε) of the optimum
/// assert!(sol.weight <= 50);
/// ```
pub fn sin_knap(items: &[Item], capacity: u64, eps: f64) -> Solution {
    let eps = eps.clamp(1e-6, 0.999);
    // Eligible items only.
    let eligible: Vec<usize> = (0..items.len())
        .filter(|&i| items[i].profit > 0.0 && items[i].weight <= capacity)
        .collect();
    if eligible.is_empty() {
        return Solution::default();
    }
    let n = eligible.len();
    let p_max = eligible.iter().map(|&i| items[i].profit).fold(0.0f64, f64::max);
    // Scale factor K = ε·P/n ⇒ every item's scaled profit ≤ n/ε.
    let k = eps * p_max / n as f64;
    let scaled: Vec<u64> = eligible
        .iter()
        .map(|&i| (items[i].profit / k).floor() as u64)
        .collect();
    let p_total: u64 = scaled.iter().sum();

    // min_weight[q] = least weight achieving scaled profit exactly q.
    const INF: u64 = u64::MAX;
    let cells = (p_total + 1) as usize;
    let mut min_weight = vec![INF; cells];
    let mut choice = vec![false; n * cells]; // choice[j][q]
    min_weight[0] = 0;
    for (j, &idx) in eligible.iter().enumerate() {
        let (pj, wj) = (scaled[j] as usize, items[idx].weight);
        for q in (pj..cells).rev() {
            let from = min_weight[q - pj];
            if from != INF && from + wj < min_weight[q] {
                min_weight[q] = from + wj;
                choice[j * cells + q] = true;
            }
        }
    }
    // Best achievable scaled profit within capacity.
    let best_q = (0..cells)
        .rev()
        .find(|&q| min_weight[q] <= capacity)
        .unwrap_or(0);
    // Reconstruct.
    let mut chosen = Vec::new();
    let mut q = best_q;
    for j in (0..n).rev() {
        if choice[j * cells + q] {
            chosen.push(eligible[j]);
            q -= scaled[j] as usize;
        }
    }
    debug_assert_eq!(q, 0, "reconstruction must land at profit 0");
    Solution::from_indices(items, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(v: &[(f64, u64)]) -> Vec<Item> {
        v.iter().map(|&(p, w)| Item::new(p, w)).collect()
    }

    #[test]
    fn brute_force_small_instance() {
        let it = items(&[(60.0, 10), (100.0, 20), (120.0, 30)]);
        let s = brute_force(&it, 50);
        assert_eq!(s.chosen, vec![1, 2]);
        assert!((s.profit - 220.0).abs() < 1e-9);
    }

    #[test]
    fn dp_matches_brute_force() {
        let it = items(&[(3.0, 4), (7.0, 5), (2.0, 1), (9.0, 7), (5.0, 3)]);
        for cap in 0..=20 {
            let a = brute_force(&it, cap);
            let b = dp_by_capacity(&it, cap);
            assert!((a.profit - b.profit).abs() < 1e-9, "cap {cap}: {} vs {}", a.profit, b.profit);
            assert!(b.feasible(cap));
        }
    }

    #[test]
    fn dp_skips_oversized_and_worthless_items() {
        let it = items(&[(10.0, 100), (-5.0, 1), (0.0, 1), (4.0, 2)]);
        let s = dp_by_capacity(&it, 10);
        assert_eq!(s.chosen, vec![3]);
    }

    #[test]
    fn greedy_half_is_at_least_half_optimal() {
        // Adversarial case for plain greedy: one big item beats ratio-greedy.
        let it = items(&[(1.0, 1), (99.0, 100)]);
        let s = greedy_half(&it, 100);
        assert!((s.profit - 99.0).abs() < 1e-9, "fallback to best single item");
        let opt = brute_force(&it, 100);
        assert!(s.profit >= 0.5 * opt.profit);
    }

    #[test]
    fn greedy_add_fills_leftover_capacity() {
        let it = items(&[(5.0, 5), (4.0, 4), (3.0, 3)]);
        let mut s = Solution::from_indices(&it, vec![0]);
        greedy_add(&it, 12, &mut s);
        assert_eq!(s.chosen, vec![0, 1, 2]);
        assert_eq!(s.weight, 12);
        // Never exceeds capacity.
        let mut s2 = Solution::from_indices(&it, vec![0]);
        greedy_add(&it, 8, &mut s2);
        assert!(s2.weight <= 8);
    }

    #[test]
    fn sin_knap_exact_on_small_eps() {
        let it = items(&[(60.0, 10), (100.0, 20), (120.0, 30)]);
        let s = sin_knap(&it, 50, 0.01);
        assert!((s.profit - 220.0).abs() < 1e-9);
        assert!(s.feasible(50));
    }

    #[test]
    fn sin_knap_respects_epsilon_guarantee() {
        let it = items(&[
            (13.0, 9),
            (8.0, 5),
            (17.0, 14),
            (4.0, 2),
            (9.0, 6),
            (11.0, 8),
            (6.0, 4),
        ]);
        for &eps in &[0.05, 0.1, 0.3, 0.5, 0.9] {
            for cap in [5u64, 10, 20, 30] {
                let opt = brute_force(&it, cap);
                let s = sin_knap(&it, cap, eps);
                assert!(s.feasible(cap));
                assert!(
                    s.profit >= (1.0 - eps) * opt.profit - 1e-9,
                    "eps={eps} cap={cap}: {} < (1-ε)·{}",
                    s.profit,
                    opt.profit
                );
            }
        }
    }

    #[test]
    fn sin_knap_empty_and_degenerate() {
        assert_eq!(sin_knap(&[], 10, 0.1), Solution::default());
        let it = items(&[(-1.0, 1), (0.0, 1)]);
        assert_eq!(sin_knap(&it, 10, 0.1).chosen.len(), 0);
        // All items oversized.
        let it = items(&[(5.0, 100)]);
        assert_eq!(sin_knap(&it, 10, 0.1).chosen.len(), 0);
    }

    #[test]
    fn sin_knap_zero_weight_items_always_fit() {
        let it = items(&[(5.0, 0), (3.0, 0), (7.0, 10)]);
        let s = sin_knap(&it, 10, 0.05);
        assert!((s.profit - 15.0).abs() < 0.8); // within FPTAS slack
        assert_eq!(s.chosen.len(), 3);
    }

    #[test]
    fn solvers_agree_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..50 {
            let n = rng.random_range(1..=12);
            let it: Vec<Item> = (0..n)
                .map(|_| Item::new(rng.random_range(1.0..50.0), rng.random_range(1..30)))
                .collect();
            let cap = rng.random_range(1..80);
            let opt = brute_force(&it, cap);
            let dp = dp_by_capacity(&it, cap);
            let fptas = sin_knap(&it, cap, 0.1);
            let gr = greedy_half(&it, cap);
            assert!((dp.profit - opt.profit).abs() < 1e-9, "trial {trial}");
            assert!(fptas.profit >= 0.9 * opt.profit - 1e-9, "trial {trial}");
            assert!(gr.profit >= 0.5 * opt.profit - 1e-9, "trial {trial}");
            for s in [&dp, &fptas, &gr] {
                assert!(s.feasible(cap), "trial {trial}");
            }
        }
    }
}
