//! Knapsack item and solution types.

/// One 0/1-knapsack item: profit to gain, weight to pay.
///
/// In NetMaster's scheduling problem an item is a screen-off network
/// activity: profit `ΔE_j − ΔP_j` (energy saved minus interruption
/// penalty), weight `V(n_j)` (payload bytes), capacity `C(t_i)`
/// (slot bandwidth budget, Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Profit (may be fractional; non-positive items are never chosen).
    pub profit: f64,
    /// Weight in capacity units.
    pub weight: u64,
}

impl Item {
    /// Convenience constructor.
    pub fn new(profit: f64, weight: u64) -> Self {
        Item { profit, weight }
    }

    /// Profit-to-weight ratio; items with zero weight get `+inf`.
    pub fn ratio(&self) -> f64 {
        if self.weight == 0 {
            f64::INFINITY
        } else {
            self.profit / self.weight as f64
        }
    }
}

/// A solution to a single knapsack instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solution {
    /// Indices of chosen items (into the input slice), ascending.
    pub chosen: Vec<usize>,
    /// Total profit of the chosen set.
    pub profit: f64,
    /// Total weight of the chosen set.
    pub weight: u64,
}

impl Solution {
    /// Builds a solution from chosen indices, recomputing totals.
    pub fn from_indices(items: &[Item], mut chosen: Vec<usize>) -> Self {
        chosen.sort_unstable();
        chosen.dedup();
        let profit = chosen.iter().map(|&i| items[i].profit).sum();
        let weight = chosen.iter().map(|&i| items[i].weight).sum();
        Solution {
            chosen,
            profit,
            weight,
        }
    }

    /// `true` when the solution respects `capacity`.
    pub fn feasible(&self, capacity: u64) -> bool {
        self.weight <= capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_weight() {
        assert_eq!(Item::new(5.0, 0).ratio(), f64::INFINITY);
        assert!((Item::new(6.0, 3).ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_indices_sorts_dedups_and_totals() {
        let items = [Item::new(1.0, 2), Item::new(3.0, 4), Item::new(5.0, 6)];
        let s = Solution::from_indices(&items, vec![2, 0, 2]);
        assert_eq!(s.chosen, vec![0, 2]);
        assert!((s.profit - 6.0).abs() < 1e-12);
        assert_eq!(s.weight, 8);
        assert!(s.feasible(8));
        assert!(!s.feasible(7));
    }
}
