//! Reusable solver workspaces.
//!
//! Every `plan_day` call used to allocate fresh `O(n · cells)` DP tables
//! inside `sin_knap` — at fleet scale (millions of solves) allocation and
//! zeroing dominated solve time. A [`SolverScratch`] owns those tables and
//! is threaded through the `*_with` solver entry points so a policy
//! allocates once and amortizes forever; [`OvScratch`] does the same for
//! the overlapped multiple-knapsack solver's per-slot buffers.

use crate::item::Item;

/// A bit-packed 2-D boolean table (row-major), replacing the old
/// `Vec<bool>` choice matrix at 1/8 the memory. Rows × cols can be
/// resized in place; the backing words are reused across solves.
#[derive(Debug, Clone, Default)]
pub struct BitGrid {
    words: Vec<u64>,
    cols: usize,
}

impl BitGrid {
    /// Creates an empty grid; call [`BitGrid::reset`] before use.
    pub fn new() -> Self {
        BitGrid::default()
    }

    /// Resizes to `rows × cols` and clears every bit, reusing the
    /// existing allocation when large enough.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.cols = cols;
        let words = rows * cols / 64 + 1;
        self.words.clear();
        self.words.resize(words, 0);
    }

    /// Sets bit `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        self.set_bit(row * self.cols + col);
    }

    /// Reads bit `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.get_bit(row * self.cols + col)
    }

    /// First bit offset of `row` — hoists the row product out of hot
    /// loops that sweep columns (pair with [`BitGrid::set_bit`]).
    #[inline]
    pub fn row_base(&self, row: usize) -> usize {
        row * self.cols
    }

    /// Sets the bit at an absolute offset from [`BitGrid::row_base`].
    #[inline]
    pub fn set_bit(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Reads the bit at an absolute offset from [`BitGrid::row_base`].
    #[inline]
    pub fn get_bit(&self, bit: usize) -> bool {
        self.words[bit / 64] >> (bit % 64) & 1 == 1
    }

    /// Heap bytes currently held by the grid.
    pub fn capacity_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// Reusable workspace for the single-knapsack solvers
/// ([`crate::solvers::sin_knap_with`], [`crate::solvers::dp_by_capacity_with`]).
///
/// All fields are internal buffers: their contents are unspecified
/// between calls, only their allocations persist.
#[derive(Debug, Clone, Default)]
pub struct SolverScratch {
    /// `min_weight[q]`: least weight achieving scaled profit `q`.
    pub(crate) min_weight: Vec<u64>,
    /// Bit-packed `choice[j][q]` / `keep[i][c]` reconstruction table.
    pub(crate) choice: BitGrid,
    /// Indices of eligible items.
    pub(crate) eligible: Vec<usize>,
    /// Scaled per-item profits.
    pub(crate) scaled: Vec<u64>,
    /// `best[c]` profits for the capacity DP.
    pub(crate) best: Vec<f64>,
}

impl SolverScratch {
    /// Creates an empty workspace (no allocations until first solve).
    pub fn new() -> Self {
        SolverScratch::default()
    }
}

/// Reusable workspace for [`crate::overlapped::solve_with`]: per-slot
/// candidate lists, the per-slot `Item` buffer, and the inner
/// single-knapsack scratch.
#[derive(Debug, Clone, Default)]
pub struct OvScratch {
    /// Inner scratch for the per-slot `SinKnap` calls.
    pub(crate) knap: SolverScratch,
    /// `slot_items[slot]` = (item index, per-slot profit), ratio-sorted.
    pub(crate) slot_items: Vec<Vec<(usize, f64)>>,
    /// Per-slot `Item` views handed to `sin_knap_with`.
    pub(crate) items_buf: Vec<Item>,
    /// Per-slot selected item ids from the SinKnap pass.
    pub(crate) selected: Vec<Vec<usize>>,
    /// `chosen_slots[item]` = slots whose SinKnap picked the item.
    pub(crate) chosen_slots: Vec<Vec<usize>>,
}

impl OvScratch {
    /// Creates an empty workspace (no allocations until first solve).
    pub fn new() -> Self {
        OvScratch::default()
    }

    /// Clears and resizes the per-slot/per-item lists, keeping their
    /// allocations.
    pub(crate) fn begin(&mut self, nslots: usize, nitems: usize) {
        resize_clear(&mut self.slot_items, nslots);
        resize_clear(&mut self.selected, nslots);
        resize_clear(&mut self.chosen_slots, nitems);
        self.items_buf.clear();
    }
}

fn resize_clear<T>(lists: &mut Vec<Vec<T>>, len: usize) {
    lists.truncate(len);
    for l in lists.iter_mut() {
        l.clear();
    }
    while lists.len() < len {
        lists.push(Vec::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitgrid_set_get_roundtrip() {
        let mut g = BitGrid::new();
        g.reset(5, 70); // spans word boundaries
        assert!(!g.get(0, 0));
        g.set(0, 0);
        g.set(4, 69);
        g.set(2, 63);
        g.set(2, 64);
        assert!(g.get(0, 0));
        assert!(g.get(4, 69));
        assert!(g.get(2, 63));
        assert!(g.get(2, 64));
        assert!(!g.get(2, 65));
        // Reset clears.
        g.reset(5, 70);
        assert!(!g.get(0, 0) && !g.get(4, 69));
    }

    #[test]
    fn bitgrid_is_eighth_of_bool_table() {
        let mut g = BitGrid::new();
        g.reset(100, 800);
        assert!(g.capacity_bytes() <= 100 * 800 / 8 + 64);
    }

    #[test]
    fn resize_clear_reuses_inner_vecs() {
        let mut lists: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4]];
        let ptr = lists[0].as_ptr();
        resize_clear(&mut lists, 3);
        assert_eq!(lists.len(), 3);
        assert!(lists.iter().all(Vec::is_empty));
        assert_eq!(lists[0].as_ptr(), ptr, "allocation retained");
    }
}
