//! Reusable solver workspaces.
//!
//! Every `plan_day` call used to allocate fresh `O(n · cells)` DP tables
//! inside `sin_knap` — at fleet scale (millions of solves) allocation and
//! zeroing dominated solve time. A [`SolverScratch`] owns those tables and
//! is threaded through the `*_with` solver entry points so a policy
//! allocates once and amortizes forever; [`OvScratch`] does the same for
//! the overlapped multiple-knapsack solver's per-slot buffers.

use crate::item::Item;

/// A bit-packed 2-D boolean table (row-major), replacing the old
/// `Vec<bool>` choice matrix at 1/8 the memory. Rows × cols can be
/// resized in place; the backing words are reused across solves.
#[derive(Debug, Clone, Default)]
pub struct BitGrid {
    words: Vec<u64>,
    cols: usize,
    /// Words that may hold set bits (high-water of past resets): the
    /// next [`BitGrid::reset`] scrubs only this prefix instead of the
    /// whole allocation, so a large solve followed by small ones does
    /// not keep paying the large solve's memset.
    dirty: usize,
}

impl BitGrid {
    /// Creates an empty grid; call [`BitGrid::reset`] before use.
    pub fn new() -> Self {
        BitGrid::default()
    }

    /// Resizes to `rows × cols` and clears every bit, reusing the
    /// existing allocation when large enough. Only the high-water
    /// prefix of words that a previous generation could have written is
    /// scrubbed; words beyond it are zero by construction.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.cols = cols;
        let needed = rows * cols / 64 + 1;
        let scrub = self.dirty.min(self.words.len());
        for w in &mut self.words[..scrub] {
            *w = 0;
        }
        if self.words.len() < needed {
            self.words.resize(needed, 0);
        }
        self.dirty = needed;
    }

    /// Sets bit `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        self.set_bit(row * self.cols + col);
    }

    /// Reads bit `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.get_bit(row * self.cols + col)
    }

    /// First bit offset of `row` — hoists the row product out of hot
    /// loops that sweep columns (pair with [`BitGrid::set_bit`]).
    #[inline]
    pub fn row_base(&self, row: usize) -> usize {
        row * self.cols
    }

    /// Sets the bit at an absolute offset from [`BitGrid::row_base`].
    #[inline]
    pub fn set_bit(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Reads the bit at an absolute offset from [`BitGrid::row_base`].
    #[inline]
    pub fn get_bit(&self, bit: usize) -> bool {
        self.words[bit / 64] >> (bit % 64) & 1 == 1
    }

    /// Heap bytes currently held by the grid.
    pub fn capacity_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// One sparse DP state of the profit-quantized Pareto-frontier solver
/// ([`crate::solvers::quantized_dp`]): a reachable (weight, scaled
/// profit) pair plus the arena link that reconstructs its item set.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct QState {
    /// Total weight of the subset.
    pub(crate) w: u64,
    /// Total scaled profit of the subset.
    pub(crate) q: u64,
    /// Eligible-item index taken to reach this state.
    pub(crate) item: u32,
    /// Arena index of the predecessor state (`u32::MAX` = root).
    pub(crate) parent: u32,
}

/// One pending node of the iterative branch-and-bound search
/// ([`crate::bnb::branch_and_bound_with`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BnbFrame {
    /// Depth in the ratio order (how many items decided).
    pub(crate) depth: u32,
    /// Length of the shared path vector when this node's parent forked.
    pub(crate) parent_len: u32,
    /// Whether this node takes item `order[depth - 1]`.
    pub(crate) take: bool,
    /// Capacity used by the path.
    pub(crate) used: u64,
    /// Profit accumulated by the path.
    pub(crate) profit: f64,
}

/// Reusable workspace for the iterative branch-and-bound solver: the
/// ratio order, the explicit DFS stack, the shared path vector, and the
/// incumbent set. Contents are unspecified between calls.
#[derive(Debug, Clone, Default)]
pub struct BnbScratch {
    /// Eligible item indices in profit-to-weight order.
    pub(crate) order: Vec<usize>,
    /// Explicit DFS stack (replaces the old recursion).
    pub(crate) stack: Vec<BnbFrame>,
    /// The current partial selection, shared across frames.
    pub(crate) current: Vec<usize>,
    /// The incumbent (best-so-far) selection.
    pub(crate) best: Vec<usize>,
}

impl BnbScratch {
    /// Creates an empty workspace (no allocations until first solve).
    pub fn new() -> Self {
        BnbScratch::default()
    }
}

/// Reusable workspace for the single-knapsack solvers
/// ([`crate::solvers::sin_knap_with`], [`crate::solvers::dp_by_capacity_with`],
/// [`crate::solvers::solve_auto`]).
///
/// All fields are internal buffers: their contents are unspecified
/// between calls, only their allocations persist.
#[derive(Debug, Clone, Default)]
pub struct SolverScratch {
    /// `min_weight[q]`: least weight achieving scaled profit `q`.
    pub(crate) min_weight: Vec<u64>,
    /// Bit-packed `choice[j][q]` / `keep[i][c]` reconstruction table.
    pub(crate) choice: BitGrid,
    /// Indices of eligible items.
    pub(crate) eligible: Vec<usize>,
    /// Scaled per-item profits.
    pub(crate) scaled: Vec<u64>,
    /// `best[c]` profits for the capacity DP.
    pub(crate) best: Vec<f64>,
    /// Ratio order for the Dantzig bound and greedy passes.
    pub(crate) order: Vec<usize>,
    /// State arena of the sparse quantized DP.
    pub(crate) arena: Vec<QState>,
    /// Current Pareto frontier (arena indices, scaled profit ascending).
    pub(crate) frontier: Vec<u32>,
    /// Merge buffer for the next frontier.
    pub(crate) merged: Vec<u32>,
    /// Nested workspace for the branch-and-bound dispatch arm.
    pub(crate) bnb: BnbScratch,
    /// Which arm answered the last [`crate::solvers::solve_auto`] call.
    pub(crate) last_kind: Option<crate::solvers::SolverKind>,
}

impl SolverScratch {
    /// Creates an empty workspace (no allocations until first solve).
    pub fn new() -> Self {
        SolverScratch::default()
    }

    /// Which solver arm answered the most recent
    /// [`crate::solvers::solve_auto`] call through this scratch, or
    /// `None` when the instance had no eligible item (or `solve_auto`
    /// has not run yet).
    pub fn last_solver(&self) -> Option<crate::solvers::SolverKind> {
        self.last_kind
    }
}

/// Reusable workspace for [`crate::overlapped::solve_with`]: per-slot
/// candidate lists, the per-slot `Item` buffer, and the inner
/// single-knapsack scratch.
#[derive(Debug, Clone, Default)]
pub struct OvScratch {
    /// Inner scratch for the per-slot `SinKnap` calls.
    pub(crate) knap: SolverScratch,
    /// `slot_items[slot]` = (item index, per-slot profit), ratio-sorted.
    pub(crate) slot_items: Vec<Vec<(usize, f64)>>,
    /// Per-slot `Item` views handed to `sin_knap_with`.
    pub(crate) items_buf: Vec<Item>,
    /// Per-slot selected item ids from the SinKnap pass.
    pub(crate) selected: Vec<Vec<usize>>,
    /// `chosen_slots[item]` = slots whose SinKnap picked the item.
    pub(crate) chosen_slots: Vec<Vec<usize>>,
}

impl OvScratch {
    /// Creates an empty workspace (no allocations until first solve).
    pub fn new() -> Self {
        OvScratch::default()
    }

    /// Clears and resizes the per-slot/per-item lists, keeping their
    /// allocations.
    pub(crate) fn begin(&mut self, nslots: usize, nitems: usize) {
        resize_clear(&mut self.slot_items, nslots);
        resize_clear(&mut self.selected, nslots);
        resize_clear(&mut self.chosen_slots, nitems);
        self.items_buf.clear();
    }
}

std::thread_local! {
    /// Per-thread recycling pool for [`OvScratch`] workspaces, so
    /// short-lived owners (one fleet member's policy) inherit the
    /// previous owner's warmed allocations instead of re-growing their
    /// own from zero.
    static OV_POOL: std::cell::RefCell<Vec<OvScratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Workspaces kept per thread; beyond this, drops free instead of pool.
const OV_POOL_CAP: usize = 8;

/// An [`OvScratch`] checked out of a per-thread pool; returns itself to
/// the pool on drop. At fleet scale each worker thread churns through
/// thousands of policies, each owning a scratch — pooling means the DP
/// tables and per-slot lists are allocated once per thread, not once
/// per member.
#[derive(Debug, Default)]
pub struct PooledOvScratch(Option<OvScratch>);

impl PooledOvScratch {
    /// Checks a workspace out of the current thread's pool (or creates
    /// an empty one when the pool is dry).
    pub fn take() -> Self {
        let inner = OV_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        PooledOvScratch(Some(inner))
    }
}

impl Clone for PooledOvScratch {
    /// Cloning checks out a fresh workspace: scratch contents are
    /// unspecified between calls, so there is nothing worth copying.
    fn clone(&self) -> Self {
        PooledOvScratch::take()
    }
}

impl std::ops::Deref for PooledOvScratch {
    type Target = OvScratch;
    fn deref(&self) -> &OvScratch {
        // lint:allow(panic-hygiene) the Option is Some from take() until Drop moves it back to the pool
        self.0.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for PooledOvScratch {
    fn deref_mut(&mut self) -> &mut OvScratch {
        // lint:allow(panic-hygiene) the Option is Some from take() until Drop moves it back to the pool
        self.0.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledOvScratch {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            OV_POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < OV_POOL_CAP {
                    pool.push(inner);
                }
            });
        }
    }
}

fn resize_clear<T>(lists: &mut Vec<Vec<T>>, len: usize) {
    lists.truncate(len);
    for l in lists.iter_mut() {
        l.clear();
    }
    while lists.len() < len {
        lists.push(Vec::new()); // lint:allow(hot-path-alloc) amortized: steady-state reuse truncates and clears; growth happens once per high-water mark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitgrid_set_get_roundtrip() {
        let mut g = BitGrid::new();
        g.reset(5, 70); // spans word boundaries
        assert!(!g.get(0, 0));
        g.set(0, 0);
        g.set(4, 69);
        g.set(2, 63);
        g.set(2, 64);
        assert!(g.get(0, 0));
        assert!(g.get(4, 69));
        assert!(g.get(2, 63));
        assert!(g.get(2, 64));
        assert!(!g.get(2, 65));
        // Reset clears.
        g.reset(5, 70);
        assert!(!g.get(0, 0) && !g.get(4, 69));
    }

    #[test]
    fn bitgrid_is_eighth_of_bool_table() {
        let mut g = BitGrid::new();
        g.reset(100, 800);
        assert!(g.capacity_bytes() <= 100 * 800 / 8 + 64);
    }

    #[test]
    fn bitgrid_highwater_reset_scrubs_across_size_changes() {
        let mut g = BitGrid::new();
        // Large grid, bits set near the end of the dirty region.
        g.reset(10, 100);
        g.set(9, 99);
        g.set(0, 0);
        // Shrink: old high bits are outside the new grid but still in
        // the allocation; a later regrow must not resurrect them.
        g.reset(2, 10);
        assert!(!g.get(0, 0));
        g.set(1, 3);
        g.reset(10, 100);
        assert!(!g.get(9, 99), "stale bit leaked through shrink/regrow");
        assert!(!g.get(0, 19), "small-grid bit leaked into the regrown grid");
        for r in 0..10 {
            for c in 0..100 {
                assert!(!g.get(r, c), "bit ({r},{c}) not scrubbed");
            }
        }
    }

    #[test]
    fn pooled_scratch_recycles_allocations_per_thread() {
        // Drain anything earlier tests parked in this thread's pool.
        loop {
            let s = PooledOvScratch::take();
            if s.knap.min_weight.capacity() == 0 && s.slot_items.capacity() == 0 {
                break;
            }
            std::mem::forget(s); // deliberately leak warmed ones away
        }
        let mut s = PooledOvScratch::take();
        s.knap.min_weight.resize(1024, 0);
        let ptr = s.knap.min_weight.as_ptr();
        drop(s);
        let s2 = PooledOvScratch::take();
        assert_eq!(s2.knap.min_weight.as_ptr(), ptr, "allocation recycled");
        // Clone checks out a distinct workspace, never aliases.
        let c = s2.clone();
        assert_ne!(
            c.knap.min_weight.as_ptr(),
            s2.knap.min_weight.as_ptr(),
            "clone must not alias the original's buffers"
        );
    }

    #[test]
    fn resize_clear_reuses_inner_vecs() {
        let mut lists: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4]];
        let ptr = lists[0].as_ptr();
        resize_clear(&mut lists, 3);
        assert_eq!(lists.len(), 3);
        assert!(lists.iter().all(Vec::is_empty));
        assert_eq!(lists[0].as_ptr(), ptr, "allocation retained");
    }
}
