//! # netmaster-knapsack
//!
//! Knapsack machinery behind NetMaster's scheduling component:
//!
//! * [`solvers::sin_knap`] — the Ibarra–Kim profit-scaling FPTAS the
//!   paper calls `SinKnap` [13], a `(1−ε)`-approximation for 0/1
//!   knapsack;
//! * [`overlapped::solve`] — the paper's Algorithm 1 for multiple
//!   knapsacks with *overlapped itemsets* (each screen-off network
//!   activity may move into either adjacent user-active slot), a
//!   `(1−ε)/2`-approximation (Lemma IV.1);
//! * exact (`brute_force`, `dp_by_capacity`) and greedy baselines used
//!   as test oracles and in the `GreedyAdd` filling step.
//!
//! The DP solvers exist in two forms: the classic per-call-allocating
//! signatures, and `_with` variants threading a reusable
//! [`scratch::SolverScratch`] / [`scratch::OvScratch`] for the
//! fleet-simulation hot path (zero DP-table allocations per solve, a
//! bit-packed choice matrix, and an exact fast path when capacity has
//! slack). The original implementations are preserved in [`reference`]
//! as equivalence oracles and perf baselines.
//!
//! ```
//! use netmaster_knapsack::overlapped::{solve, OvItem, OvProblem};
//!
//! // Two user-active slots; one background sync that may move into
//! // either (higher profit in slot 1 because it is nearer).
//! let problem = OvProblem {
//!     capacities: vec![1_000, 1_000],
//!     items: vec![OvItem::pair(300, (0, 4.2), (1, 9.1))],
//! };
//! let solution = solve(&problem, 0.1);
//! assert_eq!(solution.assignment[0], Some(1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bnb;
pub mod item;
pub mod overlapped;
pub mod reference;
pub mod scratch;
pub mod solvers;

pub use bnb::{branch_and_bound, branch_and_bound_budgeted, branch_and_bound_with};
pub use item::{Item, Solution};
pub use overlapped::{solve_with, Candidate, OvItem, OvProblem, OvSolution};
pub use scratch::{BitGrid, BnbScratch, OvScratch, PooledOvScratch, SolverScratch};
pub use solvers::{
    brute_force, dp_by_capacity, dp_by_capacity_with, greedy_add, greedy_add_presorted,
    greedy_half, greedy_half_with, quantized_dp, sin_knap, sin_knap_with, solve_auto, SolverKind,
};

/// `true` when this build compiles the `strict-invariants` runtime
/// oracles into the solvers; tests assert on it so a feature-gated CI
/// run provably exercised the checked configuration.
pub const STRICT_INVARIANTS: bool = cfg!(feature = "strict-invariants");
