//! Reference (pre-optimization) solver implementations.
//!
//! These are the original allocating versions of [`crate::sin_knap`],
//! [`crate::dp_by_capacity`], [`crate::greedy_add`] and
//! [`crate::overlapped::solve`], kept verbatim so that
//!
//! * equivalence property tests can assert the optimized scratch-based
//!   solvers produce identical (or provably no-worse) answers, and
//! * the perf harness (`netmaster-bench`'s `perf` binary) can measure
//!   the speedup of the hot-path rework against the true baseline.
//!
//! Nothing in the scheduler calls these; they exist for verification.

use crate::item::{Item, Solution};
use crate::overlapped::{OvProblem, OvSolution};

/// Reference `O(n · C)` capacity DP, allocating its tables per call.
/// Behaviorally identical to [`crate::dp_by_capacity`].
pub fn dp_by_capacity(items: &[Item], capacity: u64) -> Solution {
    let cap = capacity as usize;
    let n = items.len();
    let mut best = vec![0.0f64; cap + 1];
    let mut keep = vec![false; n * (cap + 1)];
    for (i, item) in items.iter().enumerate() {
        if item.profit <= 0.0 || item.weight > capacity {
            continue;
        }
        let w = item.weight as usize;
        for c in (w..=cap).rev() {
            let cand = best[c - w] + item.profit;
            if cand > best[c] {
                best[c] = cand;
                keep[i * (cap + 1) + c] = true;
            }
        }
    }
    let mut chosen = Vec::new();
    let mut c = cap;
    for i in (0..n).rev() {
        if keep[i * (cap + 1) + c] {
            chosen.push(i);
            c -= items[i].weight as usize;
        }
    }
    Solution::from_indices(items, chosen)
}

/// Reference Ibarra–Kim FPTAS, allocating `min_weight` and the
/// `Vec<bool>` choice matrix per call and always running the DP (no
/// capacity-slack fast path).
pub fn sin_knap(items: &[Item], capacity: u64, eps: f64) -> Solution {
    let eps = eps.clamp(1e-6, 0.999);
    let eligible: Vec<usize> = (0..items.len())
        .filter(|&i| items[i].profit > 0.0 && items[i].weight <= capacity)
        .collect();
    if eligible.is_empty() {
        return Solution::default();
    }
    let n = eligible.len();
    let p_max = eligible
        .iter()
        .map(|&i| items[i].profit)
        .fold(0.0f64, f64::max);
    let k = eps * p_max / n as f64;
    let scaled: Vec<u64> = eligible
        .iter()
        .map(|&i| (items[i].profit / k).floor() as u64)
        .collect();
    let p_total: u64 = scaled.iter().sum();

    const INF: u64 = u64::MAX;
    let cells = (p_total + 1) as usize;
    let mut min_weight = vec![INF; cells];
    let mut choice = vec![false; n * cells]; // choice[j][q]
    min_weight[0] = 0;
    for (j, &idx) in eligible.iter().enumerate() {
        let (pj, wj) = (scaled[j] as usize, items[idx].weight);
        for q in (pj..cells).rev() {
            let from = min_weight[q - pj];
            if from != INF && from + wj < min_weight[q] {
                min_weight[q] = from + wj;
                choice[j * cells + q] = true;
            }
        }
    }
    let best_q = (0..cells)
        .rev()
        .find(|&q| min_weight[q] <= capacity)
        .unwrap_or(0);
    let mut chosen = Vec::new();
    let mut q = best_q;
    for j in (0..n).rev() {
        if choice[j * cells + q] {
            chosen.push(eligible[j]);
            q -= scaled[j] as usize;
        }
    }
    debug_assert_eq!(q, 0, "reconstruction must land at profit 0");
    Solution::from_indices(items, chosen)
}

/// Reference `GreedyAdd`, rebuilding its `HashSet` membership index and
/// ratio sort on every call.
pub fn greedy_add(items: &[Item], capacity: u64, existing: &mut Solution) {
    let in_set: std::collections::HashSet<usize> = existing.chosen.iter().copied().collect();
    let mut order: Vec<usize> = (0..items.len())
        .filter(|i| !in_set.contains(i))
        .filter(|&i| items[i].profit > 0.0)
        .collect();
    order.sort_by(|&a, &b| items[b].ratio().total_cmp(&items[a].ratio()));
    for &i in &order {
        if existing.weight + items[i].weight <= capacity {
            existing.weight += items[i].weight;
            existing.profit += items[i].profit;
            existing.chosen.push(i);
        }
    }
    existing.chosen.sort_unstable();
}

/// Reference Algorithm 1 built on the reference [`sin_knap`] and
/// [`greedy_add`] above, allocating every intermediate list per call.
pub fn solve(problem: &OvProblem, eps: f64) -> OvSolution {
    debug_assert_eq!(problem.validate(), Ok(()));
    let nslots = problem.capacities.len();
    let nitems = problem.items.len();

    // --- Step 1: duplication — build each slot's (item, profit) list.
    let mut slot_items: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nslots];
    for (j, it) in problem.items.iter().enumerate() {
        for c in &it.candidates {
            slot_items[c.slot].push((j, c.profit));
        }
    }

    // --- Steps 2+3: per-slot ratio sort then SinKnap.
    let mut selected: Vec<Vec<usize>> = vec![Vec::new(); nslots];
    for (slot, list) in slot_items.iter_mut().enumerate() {
        if list.is_empty() {
            continue;
        }
        list.sort_by(|a, b| {
            let ra = a.1 / problem.items[a.0].weight.max(1) as f64;
            let rb = b.1 / problem.items[b.0].weight.max(1) as f64;
            rb.total_cmp(&ra)
        });
        let items: Vec<Item> = list
            .iter()
            .map(|&(j, p)| Item::new(p, problem.items[j].weight))
            .collect();
        let sol = sin_knap(&items, problem.capacities[slot], eps);
        selected[slot] = sol.chosen.iter().map(|&k| list[k].0).collect();
    }

    // --- Step 4: filtering — items chosen in two slots keep one copy.
    let mut chosen_slots: Vec<Vec<usize>> = vec![Vec::new(); nitems];
    for (slot, items) in selected.iter().enumerate() {
        for &j in items {
            chosen_slots[j].push(slot);
        }
    }
    let mut assignment: Vec<Option<usize>> = vec![None; nitems];
    let mut used = vec![0u64; nslots];
    let profit_of = |j: usize, slot: usize| -> f64 {
        problem.items[j]
            .candidates
            .iter()
            .find(|c| c.slot == slot)
            .map(|c| c.profit)
            .unwrap_or(f64::NEG_INFINITY)
    };
    for (j, slots) in chosen_slots.iter().enumerate() {
        let keep = match slots.len() {
            0 => continue,
            1 => slots[0],
            _ => {
                let (a, b) = (slots[0], slots[1]);
                let (pa, pb) = (profit_of(j, a), profit_of(j, b));
                if pa > pb {
                    a
                } else if pb > pa {
                    b
                } else {
                    let w = problem.items[j].weight;
                    let ra = problem.capacities[a].saturating_sub(w);
                    let rb = problem.capacities[b].saturating_sub(w);
                    if ra <= rb {
                        a
                    } else {
                        b
                    }
                }
            }
        };
        assignment[j] = Some(keep);
        used[keep] += problem.items[j].weight;
    }

    // --- Step 5: GreedyAdd — pack unassigned items into residual room.
    for slot in 0..nslots {
        let residual = problem.capacities[slot].saturating_sub(used[slot]);
        if residual == 0 {
            continue;
        }
        let cands: Vec<(usize, f64)> = slot_items[slot]
            .iter()
            .filter(|&&(j, p)| assignment[j].is_none() && p > 0.0)
            .copied()
            .collect();
        if cands.is_empty() {
            continue;
        }
        let items: Vec<Item> = cands
            .iter()
            .map(|&(j, p)| Item::new(p, problem.items[j].weight))
            .collect();
        let mut empty = Solution::default();
        greedy_add(&items, residual, &mut empty);
        for &k in &empty.chosen {
            let j = cands[k].0;
            if assignment[j].is_none()
                && used[slot] + problem.items[j].weight <= problem.capacities[slot]
            {
                assignment[j] = Some(slot);
                used[slot] += problem.items[j].weight;
            }
        }
    }

    // Assemble.
    let mut per_slot: Vec<Vec<usize>> = vec![Vec::new(); nslots];
    let mut profit = 0.0;
    for (j, a) in assignment.iter().enumerate() {
        if let Some(slot) = a {
            per_slot[*slot].push(j);
            profit += profit_of(j, *slot);
        }
    }
    OvSolution {
        assignment,
        per_slot,
        profit,
        used,
        solver: Vec::new(),
    }
}
