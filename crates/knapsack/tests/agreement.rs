//! Adversarial solver-agreement property tests.
//!
//! Pins the dispatcher ([`solve_auto`]) and the sparse quantized DP
//! ([`quantized_dp`]) against the exact oracles (`brute_force`,
//! `branch_and_bound`) and the pre-optimization [`reference`] FPTAS on
//! the instance families most likely to break an approximation scheme:
//! equal-ratio items (every greedy/bound tie-breaks), profits that
//! round to zero under the Ibarra–Kim scaling, capacities hit exactly,
//! and zero-weight items. Every case runs in the default and the
//! `strict-invariants` feature configuration (CI runs both); under
//! strict invariants the solvers additionally self-check feasibility
//! and the profit floor on every call.

use netmaster_knapsack::{
    branch_and_bound, brute_force, quantized_dp, reference, solve_auto, Item, Solution,
    SolverScratch,
};

const EPS: f64 = 0.1;

/// Exact optimum for small instances.
fn opt(items: &[Item], cap: u64) -> f64 {
    if items.len() <= 14 {
        brute_force(items, cap).profit
    } else {
        branch_and_bound(items, cap).profit
    }
}

/// Asserts the full agreement contract for one instance: both the
/// dispatcher and the quantized DP are feasible, sit within
/// `[(1−ε)·OPT, OPT]`, and the reference FPTAS (same scaling) does not
/// beat the dispatcher by more than its own approximation slack.
fn check(tag: &str, items: &[Item], cap: u64, scratch: &mut SolverScratch) {
    let best = opt(items, cap);
    let auto = solve_auto(items, cap, EPS, scratch);
    let auto_kind = scratch.last_solver();
    let qdp = quantized_dp(items, cap, EPS, scratch);
    let reference = reference::sin_knap(items, cap, EPS);
    for (name, sol) in [("solve_auto", &auto), ("quantized_dp", &qdp)] {
        assert!(sol.feasible(cap), "{tag}/{name}: infeasible");
        assert!(
            sol.profit >= (1.0 - EPS) * best - 1e-9,
            "{tag}/{name}: {} < (1-ε)·{best} (arm {auto_kind:?})",
            sol.profit
        );
        assert!(
            sol.profit <= best + 1e-9,
            "{tag}/{name}: {} beats the exact optimum {best}",
            sol.profit
        );
    }
    assert!(
        auto.profit >= (1.0 - EPS) * reference.profit - 1e-9,
        "{tag}: dispatcher {} fell below the reference FPTAS band {}",
        auto.profit,
        reference.profit
    );
}

#[test]
fn equal_ratio_items_agree() {
    let mut scratch = SolverScratch::new();
    // Every item shares profit/weight ratio 1.0: all greedy orders tie,
    // the Dantzig bound equals the optimum along entire spines, and the
    // scaled DP sees uniform levels.
    let items: Vec<Item> = (0..12).map(|_| Item::new(5.0, 5)).collect();
    for cap in [0, 4, 5, 12, 25, 30, 60, 61] {
        check(&format!("equal-ratio cap={cap}"), &items, cap, &mut scratch);
    }
    // Equal ratio at mixed magnitudes (weight w, profit w).
    let mixed: Vec<Item> = [1u64, 2, 4, 8, 16, 32, 64]
        .iter()
        .map(|&w| Item::new(w as f64, w))
        .collect();
    for cap in [31, 63, 100, 127] {
        check(
            &format!("equal-ratio-mixed cap={cap}"),
            &mixed,
            cap,
            &mut scratch,
        );
    }
}

#[test]
fn profits_rounding_to_zero_under_scaling_agree() {
    let mut scratch = SolverScratch::new();
    // One huge item sets p_max; the rest floor to scaled profit 0
    // (K = ε·p_max/n ≫ their profits). The FPTAS may drop them — the
    // (1−ε) guarantee absorbs that — but must never go infeasible or
    // lose the big item.
    let mut items = vec![Item::new(1_000.0, 50)];
    items.extend((0..10).map(|i| Item::new(1e-6 * (i + 1) as f64, 1)));
    for cap in [50, 55, 60] {
        check(&format!("zero-scaled cap={cap}"), &items, cap, &mut scratch);
        let sol = solve_auto(&items, cap, EPS, &mut scratch);
        assert!(
            sol.chosen.contains(&0),
            "cap={cap}: the dominant item must survive zero-rounding"
        );
    }
    // Tight variant: the big item and the dust compete for room.
    check("zero-scaled tight", &items, 52, &mut scratch);
}

#[test]
fn exactly_tight_capacity_agrees() {
    let mut scratch = SolverScratch::new();
    // The optimum fills the knapsack to the byte: off-by-one weight
    // accounting (the classic `<` vs `<=` slip) shows up here.
    let items = [
        Item::new(9.0, 3),
        Item::new(14.0, 5),
        Item::new(18.0, 7),
        Item::new(22.0, 9),
    ];
    // cap 12 = 3+9 = 5+7; cap 24 = everything (slack fast path).
    for cap in [12, 15, 16, 24] {
        check(&format!("tight cap={cap}"), &items, cap, &mut scratch);
    }
    let sol = solve_auto(&items, 24, EPS, &mut scratch);
    assert_eq!(sol.weight, 24, "cap 24: every item fits exactly");
    assert_eq!(sol.chosen.len(), 4);
}

#[test]
fn zero_weight_items_agree() {
    let mut scratch = SolverScratch::new();
    // Zero-weight, positive-profit items are free profit; every solver
    // must take them even at capacity 0, and they must never perturb
    // the weight accounting of the paid items.
    let items = [
        Item::new(3.0, 0),
        Item::new(7.0, 10),
        Item::new(0.5, 0),
        Item::new(6.0, 9),
    ];
    for cap in [0, 9, 10, 19] {
        check(&format!("zero-weight cap={cap}"), &items, cap, &mut scratch);
    }
    let sol = solve_auto(&items, 0, EPS, &mut scratch);
    assert!(
        (sol.profit - 3.5).abs() < 1e-9,
        "cap 0: both free items, nothing else ({})",
        sol.profit
    );
    assert_eq!(sol.weight, 0);
}

#[test]
fn dirty_scratch_never_leaks_between_adversarial_cases() {
    // The same scratch cycles through every family back-to-back; each
    // answer must match a fresh-scratch solve bit for bit.
    let families: Vec<(Vec<Item>, u64)> = vec![
        ((0..12).map(|_| Item::new(5.0, 5)).collect(), 25),
        (
            {
                let mut v = vec![Item::new(1_000.0, 50)];
                v.extend((0..10).map(|i| Item::new(1e-6 * (i + 1) as f64, 1)));
                v
            },
            55,
        ),
        (
            vec![
                Item::new(9.0, 3),
                Item::new(14.0, 5),
                Item::new(18.0, 7),
                Item::new(22.0, 9),
            ],
            12,
        ),
        (
            vec![
                Item::new(3.0, 0),
                Item::new(7.0, 10),
                Item::new(0.5, 0),
                Item::new(6.0, 9),
            ],
            10,
        ),
    ];
    let mut shared = SolverScratch::new();
    for round in 0..3 {
        for (i, (items, cap)) in families.iter().enumerate() {
            let warm: Solution = solve_auto(items, *cap, EPS, &mut shared);
            let fresh = solve_auto(items, *cap, EPS, &mut SolverScratch::new());
            assert_eq!(
                warm, fresh,
                "round {round} family {i}: dirty scratch changed the answer"
            );
            let warm_q = quantized_dp(items, *cap, EPS, &mut shared);
            let fresh_q = quantized_dp(items, *cap, EPS, &mut SolverScratch::new());
            assert_eq!(
                warm_q, fresh_q,
                "round {round} family {i}: dirty scratch changed the quantized DP"
            );
        }
    }
}

#[test]
#[cfg(feature = "strict-invariants")]
// The "constant" is exactly what's under test: this cfg of the suite
// must see the oracles compiled in.
#[allow(clippy::assertions_on_constants)]
fn strict_invariants_config_is_exercised() {
    // Pins that the feature-gated CI run actually compiled the oracles
    // in; the agreement checks above then run them on every solve.
    assert!(netmaster_knapsack::STRICT_INVARIANTS);
}

#[test]
#[cfg(not(feature = "strict-invariants"))]
// The "constant" is exactly what's under test: this cfg of the suite
// must see the oracles compiled out.
#[allow(clippy::assertions_on_constants)]
fn default_config_is_exercised() {
    assert!(!netmaster_knapsack::STRICT_INVARIANTS);
}
