//! # netmaster-mining
//!
//! User habit mining for the NetMaster reproduction: hourly intensity
//! extraction, Pearson-correlation analysis of usage patterns (Eq. 1,
//! Figs. 3–4), hour-level prediction of user active slots (Eq. 2) and
//! screen-off network active slots (Eq. 3) with the impact-based δ
//! threshold, and "Special Apps" detection (§IV-C2).
//!
//! ```
//! use netmaster_mining::{HourlyHistory, PredictionConfig, predict_active_slots};
//! use netmaster_trace::gen::generate_panel;
//!
//! let trace = &generate_panel(14, 7)[3]; // the regular commuter
//! let history = HourlyHistory::from_trace(trace);
//! let pred = predict_active_slots(&history, PredictionConfig::default());
//! // The commuter's 07:00 peak is predicted active on weekdays.
//! assert!(pred.weekday[7]);
//! // Deep night is not.
//! assert!(!pred.weekday[3]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod confidence;
pub mod incremental;
pub mod intensity;
pub mod pearson;
pub mod prediction;
pub mod predictors;
pub mod special;
pub mod stability;

pub use confidence::{
    predict_with_confidence, predict_with_confidence_from_counts, wilson_interval, Bound,
};
pub use incremental::IncrementalMiner;
pub use intensity::HourlyHistory;
pub use pearson::{cross_day_matrix, cross_user_matrix, pearson, CorrelationMatrix};
pub use prediction::{
    predict_active_slots, prediction_accuracy, ActiveSlotPrediction, NetworkPrediction,
    PredictionConfig,
};
pub use predictors::{predict_with, EwmaModel, FrequencyModel, SmoothedModel, UsageModel};
pub use special::SpecialApps;
pub use stability::{habit_stability, habit_stability_for, StabilityReport};
