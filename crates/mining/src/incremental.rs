//! Incrementally-updated mining state — the fleet-scale hot path.
//!
//! [`NetMasterPolicy`](../../netmaster_core/policies/netmaster) retrains
//! after every simulated day. The batch pipeline re-derives everything
//! from the full history each time: `O(D)` trace clones, `O(D · 24)`
//! intensity scans, `O(D²·24)` habit-stability correlations and a full
//! [`NetworkPrediction`] rebuild — per day, per fleet member. An
//! [`IncrementalMiner`] maintains the same statistics as running
//! aggregates so absorbing a new day is `O(24 + events_in_day)` and
//! every query is answered from caches.
//!
//! **Equivalence contract** (property-tested): every query is
//! *bit-for-bit* equal to its batch counterpart over the same days.
//! This holds because all cached aggregates are either integer-valued
//! (exact in `u64`, and the batch code's f64 accumulation of small
//! integers is exact too) or f64 sums accumulated in the identical
//! order as the batch scan.

use crate::confidence::{predict_with_confidence_from_counts, Bound};
use crate::intensity::HourlyHistory;
use crate::pearson::pearson;
use crate::prediction::{
    ActiveSlotPrediction, AppNetworkPrediction, NetworkPrediction, PredictionConfig,
};
use crate::special::SpecialApps;
use crate::stability::StabilityReport;
use netmaster_trace::event::AppId;
use netmaster_trace::time::{hour_of, DayKind, HOURS_PER_DAY};
use netmaster_trace::trace::DayTrace;

/// Number of day kinds (weekday, weekend); indexed by `DayKind as usize`.
const KINDS: usize = 2;

/// One app's raw screen-off (count, bytes) hourly totals.
type AppHourlyTotals = Box<([f64; HOURS_PER_DAY], [f64; HOURS_PER_DAY])>;

/// Mining state that absorbs one day at a time.
///
/// Feed days in chronological order with [`IncrementalMiner::push_day`];
/// query predictions, stability, and network forecasts at any point.
/// After discarding history (habit-drift reset), build a fresh miner
/// from the retained days.
#[derive(Debug, Clone, Default)]
pub struct IncrementalMiner {
    /// The raw per-day hourly rows (24 `u64`s per day — cheap to keep).
    history: HourlyHistory,
    /// Days recorded per kind.
    days_of: [u64; KINDS],
    /// `usage_days[k][h]`: days of kind `k` with any usage in hour `h`.
    usage_days: [[u64; HOURS_PER_DAY]; KINDS],
    /// `kind_sums[k][h]`: total interactions in hour `h` over kind-`k` days.
    kind_sums: [[u64; HOURS_PER_DAY]; KINDS],
    /// Habit-stability series, maintained as days arrive.
    series: Vec<(usize, f64)>,
    /// Running sum of the series (for the mean score).
    score_sum: f64,
    /// Raw screen-off activity counts per hour (pre-division totals).
    net_count: [f64; HOURS_PER_DAY],
    /// Raw screen-off bytes per hour (pre-division totals).
    net_bytes: [f64; HOURS_PER_DAY],
    /// Per-app raw (count, bytes) totals, indexed by the dense app id;
    /// `None` until the app's first screen-off activity. Ascending
    /// index order matches the BTreeMap ordering this replaced.
    per_app: Vec<Option<AppHourlyTotals>>,
    /// Special-apps profile, folded day by day.
    special: SpecialApps,
}

impl IncrementalMiner {
    /// Fresh, empty miner.
    pub fn new() -> Self {
        IncrementalMiner::default()
    }

    /// Re-mines from scratch over `days` — the drift-reaction hook:
    /// when a detector decides the learned habit no longer matches
    /// reality, the stale aggregate is discarded and the model restarts
    /// from only the retained fresh days. Bit-for-bit identical to
    /// pushing the same days into [`IncrementalMiner::new`].
    pub fn rebuilt_from<'a>(days: impl IntoIterator<Item = &'a DayTrace>) -> Self {
        netmaster_obs::counter!(netmaster_obs::names::MINING_REMINE_TOTAL);
        let mut m = IncrementalMiner::new();
        for d in days {
            m.push_day(d);
        }
        m
    }

    /// Absorbs one day of monitoring data. `O(24 + events_in_day)`.
    // lint:hot-path
    pub fn push_day(&mut self, day: &DayTrace) {
        netmaster_obs::counter!(netmaster_obs::names::MINING_DAYS_ABSORBED_TOTAL);
        let mut row = [0u64; HOURS_PER_DAY];
        for i in &day.interactions {
            row[hour_of(i.at)] += 1;
        }
        let kind = DayKind::of_day(day.day);
        let k = kind as usize;

        // Stability point for today against the trailing same-kind mean
        // — computed before today joins the aggregates, exactly like
        // `habit_stability`'s prior-days reference (min_reference = 2).
        let n = self.days_of[k];
        if n >= 2 {
            let mut reference = [0.0f64; HOURS_PER_DAY];
            for (h, r) in reference.iter_mut().enumerate() {
                *r = self.kind_sums[k][h] as f64 / n as f64;
            }
            let mut today = [0.0f64; HOURS_PER_DAY];
            for (t, &c) in today.iter_mut().zip(row.iter()) {
                *t = c as f64;
            }
            let r = pearson(&today, &reference);
            self.series.push((self.history.num_days(), r));
            self.score_sum += r;
        }

        // Intensity aggregates.
        self.days_of[k] += 1;
        for (h, &c) in row.iter().enumerate() {
            self.kind_sums[k][h] += c;
            if c > 0 {
                self.usage_days[k][h] += 1;
            }
        }
        self.history.counts.push(row);
        self.history.kinds.push(kind);

        // Network-prediction totals, accumulated in the same order the
        // batch scan visits activities (so f64 sums match bit-for-bit).
        for a in day.screen_off_activities() {
            let h = hour_of(a.start);
            self.net_count[h] += 1.0;
            self.net_bytes[h] += a.volume() as f64;
            let i = a.app.0 as usize;
            if i >= self.per_app.len() {
                self.per_app.resize_with(i + 1, || None);
            }
            let entry = self.per_app[i]
                // lint:allow(hot-path-alloc) boxed once per app lifetime, not per day — amortized to zero across the history
                .get_or_insert_with(|| Box::new(([0.0; HOURS_PER_DAY], [0.0; HOURS_PER_DAY])));
            entry.0[h] += 1.0;
            entry.1[h] += a.volume() as f64;
        }

        self.special.observe_day(day);
    }

    /// Days absorbed so far.
    pub fn num_days(&self) -> usize {
        self.history.num_days()
    }

    /// The accumulated hourly rows (for code that still wants the
    /// batch-shaped view).
    pub fn history(&self) -> &HourlyHistory {
        &self.history
    }

    /// The maintained Special Apps profile.
    pub fn special_apps(&self) -> &SpecialApps {
        &self.special
    }

    /// `Pr[u(t_i)]` per hour for a day kind — equals
    /// [`HourlyHistory::usage_probability`] over the same days.
    pub fn usage_probability(&self, kind: DayKind) -> [f64; HOURS_PER_DAY] {
        let k = kind as usize;
        let mut v = [0.0; HOURS_PER_DAY];
        if self.days_of[k] == 0 {
            return v;
        }
        for (h, x) in v.iter_mut().enumerate() {
            *x = self.usage_days[k][h] as f64 / self.days_of[k] as f64;
        }
        v
    }

    /// Mean intensity per hour over all days — equals
    /// [`HourlyHistory::mean_intensity`] over the same days.
    pub fn mean_intensity(&self) -> [f64; HOURS_PER_DAY] {
        let mut v = [0.0; HOURS_PER_DAY];
        let days = self.num_days();
        if days == 0 {
            return v;
        }
        for (h, x) in v.iter_mut().enumerate() {
            *x = (self.kind_sums[0][h] + self.kind_sums[1][h]) as f64 / days as f64;
        }
        v
    }

    /// Confidence-aware active-slot prediction from the cached Bernoulli
    /// counts — equals [`crate::predict_with_confidence`] over the same
    /// days, in O(24) instead of O(days · 24).
    pub fn predict_confident(
        &self,
        cfg: PredictionConfig,
        bound: Bound,
        z: f64,
    ) -> ActiveSlotPrediction {
        predict_with_confidence_from_counts(&self.usage_days, self.days_of, cfg, bound, z)
    }

    /// The habit-stability report — equals [`crate::habit_stability`]
    /// over the same days. The series itself is maintained per-push;
    /// this just packages it.
    pub fn stability(&self) -> StabilityReport {
        let score = if self.series.is_empty() {
            0.0
        } else {
            self.score_sum / self.series.len() as f64
        };
        StabilityReport {
            series: self.series.clone(),
            score,
        }
    }

    /// Screen-off network forecast — equals
    /// [`NetworkPrediction::from_trace`] over the same days.
    pub fn network_prediction(&self) -> NetworkPrediction {
        let days = self.num_days().max(1) as f64;
        let mut count = self.net_count;
        let mut bytes = self.net_bytes;
        let mut active = [false; HOURS_PER_DAY];
        for h in 0..HOURS_PER_DAY {
            count[h] /= days;
            bytes[h] /= days;
            active[h] = count[h] > 0.0;
        }
        let mut per_app: Vec<AppNetworkPrediction> = self
            .per_app
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (AppId(i as u16), e)))
            .map(|(app, e)| {
                let mut c = e.0;
                let mut b = e.1;
                for h in 0..HOURS_PER_DAY {
                    c[h] /= days;
                    b[h] /= days;
                }
                AppNetworkPrediction {
                    app,
                    expected_count: c,
                    expected_bytes: b,
                }
            })
            .collect();
        per_app.sort_by(|a, b| {
            b.daily_count()
                .total_cmp(&a.daily_count())
                .then_with(|| a.app.cmp(&b.app))
        });
        NetworkPrediction {
            expected_count: count,
            expected_bytes: bytes,
            active,
            per_app,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{habit_stability, predict_with_confidence};
    use netmaster_trace::gen::TraceGenerator;
    use netmaster_trace::profile::UserProfile;
    use netmaster_trace::trace::Trace;

    fn trace_for(user: usize, days: usize, seed: u64) -> Trace {
        TraceGenerator::new(UserProfile::panel().remove(user))
            .with_seed(seed)
            .generate(days)
    }

    /// The incremental miner must agree with the batch pipeline
    /// *bit-for-bit* at every prefix of the history, for every panel
    /// user — this is the contract that lets the policy switch over.
    #[test]
    fn matches_batch_pipeline_at_every_prefix() {
        for user in 0..4 {
            let trace = trace_for(user, 14, 1000 + user as u64);
            let mut miner = IncrementalMiner::new();
            for upto in 1..=trace.days.len() {
                miner.push_day(&trace.days[upto - 1]);
                let prefix = trace.slice_days(0, upto);
                let batch = HourlyHistory::from_trace(&prefix);
                assert_eq!(miner.history(), &batch, "user {user} upto {upto}");
                for kind in [DayKind::Weekday, DayKind::Weekend] {
                    assert_eq!(
                        miner.usage_probability(kind),
                        batch.usage_probability(kind),
                        "user {user} upto {upto}"
                    );
                }
                assert_eq!(miner.mean_intensity(), batch.mean_intensity());
                // Stability: identical series and score.
                assert_eq!(miner.stability(), habit_stability(&batch));
                // Confidence prediction: identical flags and probs.
                let cfg = PredictionConfig::default();
                for bound in [Bound::Upper, Bound::Point, Bound::Lower] {
                    assert_eq!(
                        miner.predict_confident(cfg, bound, 1.96),
                        predict_with_confidence(&batch, cfg, bound, 1.96),
                        "user {user} upto {upto} {bound:?}"
                    );
                }
                // Network forecast: identical aggregates AND per-app order.
                assert_eq!(
                    miner.network_prediction(),
                    NetworkPrediction::from_trace(&prefix)
                );
                // Special apps: identical profile.
                assert_eq!(miner.special_apps(), &SpecialApps::from_trace(&prefix));
            }
        }
    }

    /// The drift-reaction rebuild is exactly a fresh miner fed the same
    /// days — no hidden carry-over from the discarded aggregate.
    #[test]
    fn rebuilt_from_equals_fresh_pushes() {
        let trace = trace_for(2, 9, 77);
        let rebuilt = IncrementalMiner::rebuilt_from(&trace.days[7..]);
        let mut fresh = IncrementalMiner::new();
        for d in &trace.days[7..] {
            fresh.push_day(d);
        }
        assert_eq!(rebuilt.num_days(), 2);
        assert_eq!(rebuilt.history(), fresh.history());
        assert_eq!(rebuilt.stability(), fresh.stability());
        assert_eq!(rebuilt.network_prediction(), fresh.network_prediction());
        assert_eq!(rebuilt.special_apps(), fresh.special_apps());
    }

    #[test]
    fn empty_miner_is_all_zero() {
        let m = IncrementalMiner::new();
        assert_eq!(m.num_days(), 0);
        assert_eq!(m.mean_intensity(), [0.0; 24]);
        assert_eq!(m.usage_probability(DayKind::Weekday), [0.0; 24]);
        assert_eq!(m.stability().series.len(), 0);
        assert_eq!(m.network_prediction().daily_count(), 0.0);
    }

    #[test]
    fn push_is_constant_work_per_day() {
        // Not a timing test — a structural one: absorbing day d must
        // not rescan history, so the per-app totals and series grow
        // monotonically without recomputation artifacts.
        let trace = trace_for(3, 21, 9);
        let mut m = IncrementalMiner::new();
        let mut prev_series_len = 0;
        for d in &trace.days {
            m.push_day(d);
            let len = m.stability().series.len();
            assert!(len >= prev_series_len && len <= prev_series_len + 1);
            prev_series_len = len;
        }
        assert_eq!(m.num_days(), 21);
    }
}
