//! Confidence-aware slot prediction.
//!
//! With only 2–3 weeks of history, `Pr[u(t_i)]` is estimated from a
//! handful of Bernoulli trials — 3 quiet days out of 10 could be a 30%
//! habit or bad luck. The paper thresholds the raw frequency; this
//! module offers the statistically careful variant: threshold the
//! **Wilson score interval** instead. Declaring a slot *inactive* only
//! when the *upper* bound sits below δ makes the ≤δ interrupt guarantee
//! hold with confidence, at some energy cost (fewer hours are declared
//! safe to go dark); the reverse trade uses the lower bound.

use crate::intensity::HourlyHistory;
use crate::prediction::{ActiveSlotPrediction, PredictionConfig};
use netmaster_trace::time::{DayKind, HOURS_PER_DAY};
use serde::{Deserialize, Serialize};

/// Wilson score interval for a Bernoulli proportion: `successes` in
/// `trials` at the given `z` (1.96 ≈ 95%). Returns `(lower, upper)`.
///
/// ```
/// use netmaster_mining::wilson_interval;
///
/// // 3 active days out of 10: the point estimate is 0.30, but with so
/// // few trials the truth plausibly sits anywhere in roughly [0.11, 0.60].
/// let (lo, hi) = wilson_interval(3, 10, 1.96);
/// assert!(lo < 0.3 && 0.3 < hi);
/// assert!(hi - lo > 0.4);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Which interval bound the δ threshold compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Compare δ against the **upper** bound: an hour goes inactive only
    /// when we are confident usage probability is ≤ δ. Conservative on
    /// user experience (the paper's first-place concern).
    Upper,
    /// Compare against the raw point estimate — the paper's rule.
    Point,
    /// Compare against the **lower** bound: aggressive energy saving,
    /// weaker interrupt guarantee.
    Lower,
}

/// Predicts active slots thresholding the chosen Wilson bound at δ.
pub fn predict_with_confidence(
    history: &HourlyHistory,
    cfg: PredictionConfig,
    bound: Bound,
    z: f64,
) -> ActiveSlotPrediction {
    let mut successes = [[0u64; HOURS_PER_DAY]; 2];
    let mut trials = [0u64; 2];
    for kind in [DayKind::Weekday, DayKind::Weekend] {
        let rows = history.rows_of_kind(kind);
        let k = kind as usize;
        trials[k] = rows.len() as u64;
        for h in 0..HOURS_PER_DAY {
            successes[k][h] = rows.iter().filter(|r| r[h] > 0).count() as u64;
        }
    }
    predict_with_confidence_from_counts(&successes, trials, cfg, bound, z)
}

/// [`predict_with_confidence`] from pre-aggregated Bernoulli counts:
/// `successes[kind][h]` days of that kind with any usage in hour `h`,
/// out of `trials[kind]` days, indexed by `DayKind as usize`. This is
/// the entry point for [`crate::IncrementalMiner`], which maintains
/// those counts in O(1) per day instead of rescanning history.
pub fn predict_with_confidence_from_counts(
    successes: &[[u64; HOURS_PER_DAY]; 2],
    trials: [u64; 2],
    cfg: PredictionConfig,
    bound: Bound,
    z: f64,
) -> ActiveSlotPrediction {
    let mut out = ActiveSlotPrediction {
        weekday: [false; HOURS_PER_DAY],
        weekend: [false; HOURS_PER_DAY],
        prob_weekday: [0.0; HOURS_PER_DAY],
        prob_weekend: [0.0; HOURS_PER_DAY],
    };
    for kind in [DayKind::Weekday, DayKind::Weekend] {
        let k = kind as usize;
        let delta = cfg.delta(kind);
        for (h, &s) in successes[k].iter().enumerate() {
            let n = trials[k];
            let point = if n == 0 { 0.0 } else { s as f64 / n as f64 };
            let (lo, hi) = wilson_interval(s, n, z);
            let stat = match bound {
                Bound::Upper => hi,
                Bound::Point => point,
                Bound::Lower => lo,
            };
            let active = stat > delta;
            match kind {
                DayKind::Weekday => {
                    out.prob_weekday[h] = point;
                    out.weekday[h] = active;
                }
                DayKind::Weekend => {
                    out.prob_weekend[h] = point;
                    out.weekend[h] = active;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::{predict_active_slots, prediction_accuracy};
    use netmaster_trace::gen::TraceGenerator;
    use netmaster_trace::profile::UserProfile;

    #[test]
    fn wilson_brackets_the_point_estimate() {
        for (s, n) in [(0u64, 10u64), (3, 10), (5, 10), (10, 10), (7, 21)] {
            let p = s as f64 / n as f64;
            let (lo, hi) = wilson_interval(s, n, 1.96);
            assert!(
                lo <= p + 1e-12 && p <= hi + 1e-12,
                "{s}/{n}: [{lo},{hi}] vs {p}"
            );
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let (lo1, hi1) = wilson_interval(3, 10, 1.96);
        let (lo2, hi2) = wilson_interval(30, 100, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn zero_trials_is_maximally_uncertain() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn upper_bound_declares_more_hours_active() {
        let trace = TraceGenerator::new(UserProfile::panel().remove(1))
            .with_seed(8)
            .generate(14);
        let h = HourlyHistory::from_trace(&trace);
        let cfg = PredictionConfig::default();
        let point = predict_with_confidence(&h, cfg, Bound::Point, 1.96);
        let upper = predict_with_confidence(&h, cfg, Bound::Upper, 1.96);
        let lower = predict_with_confidence(&h, cfg, Bound::Lower, 1.96);
        let count =
            |p: &ActiveSlotPrediction| p.weekday.iter().chain(&p.weekend).filter(|&&b| b).count();
        assert!(count(&upper) >= count(&point), "upper is conservative");
        assert!(count(&point) >= count(&lower), "lower is aggressive");
        assert!(count(&upper) > count(&lower), "the bounds actually differ");
    }

    #[test]
    fn point_bound_matches_the_paper_rule() {
        let trace = TraceGenerator::new(UserProfile::panel().remove(3))
            .with_seed(12)
            .generate(14);
        let h = HourlyHistory::from_trace(&trace);
        let cfg = PredictionConfig::default();
        let a = predict_with_confidence(&h, cfg, Bound::Point, 1.96);
        let b = predict_active_slots(&h, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn upper_bound_never_reduces_accuracy() {
        let trace = TraceGenerator::new(UserProfile::panel().remove(6))
            .with_seed(20)
            .generate(21);
        let train = trace.slice_days(0, 14);
        let test = trace.slice_days(14, 21);
        let h = HourlyHistory::from_trace(&train);
        let cfg = PredictionConfig::default();
        let point_acc =
            prediction_accuracy(&predict_with_confidence(&h, cfg, Bound::Point, 1.96), &test);
        let upper_acc =
            prediction_accuracy(&predict_with_confidence(&h, cfg, Bound::Upper, 1.96), &test);
        assert!(
            upper_acc >= point_acc - 1e-12,
            "more active hours cannot lower coverage accuracy: {upper_acc} vs {point_acc}"
        );
    }
}
