//! Hourly usage-intensity extraction from traces.
//!
//! "Intensity" is the paper's unit of habit: *the total times of usage
//! in an hour* (§IV-C1). Everything the miner does — Pearson
//! correlation, active-slot prediction, threshold tuning — runs on the
//! per-day, per-hour interaction counts extracted here.

use netmaster_trace::time::{DayKind, HOURS_PER_DAY};
use netmaster_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// Per-day hourly usage counts for one user.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HourlyHistory {
    /// `counts[d][h]` = interactions in hour `h` of recorded day `d`.
    pub counts: Vec<[u64; HOURS_PER_DAY]>,
    /// Weekday/weekend tag of each recorded day.
    pub kinds: Vec<DayKind>,
}

impl HourlyHistory {
    /// Extracts the history from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut h = HourlyHistory::default();
        for day in &trace.days {
            let mut row = [0u64; HOURS_PER_DAY];
            for i in &day.interactions {
                row[netmaster_trace::time::hour_of(i.at)] += 1;
            }
            h.counts.push(row);
            h.kinds.push(DayKind::of_day(day.day));
        }
        h
    }

    /// Number of recorded days.
    pub fn num_days(&self) -> usize {
        self.counts.len()
    }

    /// Day rows restricted to one day kind.
    pub fn rows_of_kind(&self, kind: DayKind) -> Vec<&[u64; HOURS_PER_DAY]> {
        self.counts
            .iter()
            .zip(&self.kinds)
            .filter(|(_, k)| **k == kind)
            .map(|(c, _)| c)
            .collect()
    }

    /// Mean intensity per hour over all days (the Fig. 3 usage vector).
    pub fn mean_intensity(&self) -> [f64; HOURS_PER_DAY] {
        let mut v = [0.0; HOURS_PER_DAY];
        if self.counts.is_empty() {
            return v;
        }
        for row in &self.counts {
            for (h, &c) in row.iter().enumerate() {
                v[h] += c as f64;
            }
        }
        for x in &mut v {
            *x /= self.counts.len() as f64;
        }
        v
    }

    /// `Pr[u(t_i)]` per Eq. 2: the fraction of days (of the given kind)
    /// in which hour `i` saw any usage — `u(t_i)_j ∈ {0, 1}`.
    pub fn usage_probability(&self, kind: DayKind) -> [f64; HOURS_PER_DAY] {
        let rows = self.rows_of_kind(kind);
        let mut v = [0.0; HOURS_PER_DAY];
        if rows.is_empty() {
            return v;
        }
        for row in &rows {
            for (h, &c) in row.iter().enumerate() {
                if c > 0 {
                    v[h] += 1.0;
                }
            }
        }
        for x in &mut v {
            *x /= rows.len() as f64;
        }
        v
    }

    /// One day's counts as an f64 vector (for Pearson).
    pub fn day_vector(&self, d: usize) -> [f64; HOURS_PER_DAY] {
        let mut v = [0.0; HOURS_PER_DAY];
        for (h, &c) in self.counts[d].iter().enumerate() {
            v[h] = c as f64;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmaster_trace::event::Interaction;
    use netmaster_trace::time::{at_hour, SECS_PER_HOUR};
    use netmaster_trace::trace::DayTrace;

    fn trace_with_usage(pattern: &[(usize, usize, u64)]) -> Trace {
        // pattern: (day, hour, count)
        let mut t = Trace::new(1);
        let app = t.apps.register("a");
        let max_day = pattern.iter().map(|&(d, ..)| d).max().unwrap_or(0);
        for d in 0..=max_day {
            let mut day = DayTrace::new(d);
            for &(pd, h, n) in pattern {
                if pd == d {
                    for k in 0..n {
                        day.interactions.push(Interaction {
                            at: at_hour(d, h) + k * 60,
                            app,
                            needs_network: false,
                        });
                    }
                }
            }
            // A covering session so validation would hold (not required here).
            if !day.interactions.is_empty() {
                day.sessions = vec![netmaster_trace::event::ScreenSession {
                    start: day.interactions[0].at,
                    end: day.interactions.last().unwrap().at + SECS_PER_HOUR,
                }];
            }
            day.normalize();
            t.days.push(day);
        }
        t
    }

    #[test]
    fn counts_land_in_right_cells() {
        let t = trace_with_usage(&[(0, 8, 3), (0, 20, 1), (1, 8, 2)]);
        let h = HourlyHistory::from_trace(&t);
        assert_eq!(h.num_days(), 2);
        assert_eq!(h.counts[0][8], 3);
        assert_eq!(h.counts[0][20], 1);
        assert_eq!(h.counts[1][8], 2);
        assert_eq!(h.counts[0][9], 0);
    }

    #[test]
    fn mean_intensity_averages_days() {
        let t = trace_with_usage(&[(0, 8, 4), (1, 8, 2)]);
        let h = HourlyHistory::from_trace(&t);
        assert!((h.mean_intensity()[8] - 3.0).abs() < 1e-12);
        assert_eq!(h.mean_intensity()[0], 0.0);
    }

    #[test]
    fn usage_probability_is_binary_per_day() {
        // Day 0 (Mon): 5 uses at hour 8; day 1 (Tue): none at hour 8.
        let t = trace_with_usage(&[(0, 8, 5), (1, 9, 1)]);
        let h = HourlyHistory::from_trace(&t);
        let p = h.usage_probability(DayKind::Weekday);
        assert!((p[8] - 0.5).abs() < 1e-12, "5 uses count once");
        assert!((p[9] - 0.5).abs() < 1e-12);
        assert_eq!(p[10], 0.0);
    }

    #[test]
    fn weekend_rows_are_separated() {
        // Days 0..6; day 5 = Saturday.
        let t = trace_with_usage(&[(5, 14, 2), (0, 14, 1)]);
        let h = HourlyHistory::from_trace(&t);
        assert_eq!(h.rows_of_kind(DayKind::Weekend).len(), 1);
        let p_we = h.usage_probability(DayKind::Weekend);
        assert!((p_we[14] - 1.0).abs() < 1e-12);
        let p_wd = h.usage_probability(DayKind::Weekday);
        assert!(p_wd[14] < 0.5);
    }

    #[test]
    fn empty_history_is_all_zero() {
        let h = HourlyHistory::default();
        assert_eq!(h.mean_intensity(), [0.0; 24]);
        assert_eq!(h.usage_probability(DayKind::Weekday), [0.0; 24]);
    }
}
