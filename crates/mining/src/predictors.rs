//! Alternative usage-probability models.
//!
//! The paper's predictor (Eq. 2) weighs every history day equally; its
//! future work calls for deeper habit analysis. This module makes the
//! probability model pluggable: the paper's frequency model, an
//! exponentially-weighted variant that adapts to habit drift (schedule
//! changes, travel), and an hour-smoothed variant that credits shoulder
//! hours. All feed the same thresholding ([`predict_with`]).

use crate::intensity::HourlyHistory;
use crate::prediction::{ActiveSlotPrediction, PredictionConfig};
use netmaster_trace::time::{DayKind, HOURS_PER_DAY};

/// A model turning history into `Pr[u(t_i)]` per hour.
pub trait UsageModel {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Hourly usage probabilities for one day kind.
    fn usage_probability(&self, history: &HourlyHistory, kind: DayKind) -> [f64; HOURS_PER_DAY];
}

/// The paper's Eq. 2: every history day counts equally.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrequencyModel;

impl UsageModel for FrequencyModel {
    fn name(&self) -> &'static str {
        "frequency"
    }

    fn usage_probability(&self, history: &HourlyHistory, kind: DayKind) -> [f64; HOURS_PER_DAY] {
        history.usage_probability(kind)
    }
}

/// Exponentially weighted frequencies: a day `a` days old weighs
/// `(1 − alpha)^a`. Adapts within ~`1/alpha` days to a habit change.
#[derive(Debug, Clone, Copy)]
pub struct EwmaModel {
    /// Per-day decay in `(0, 1]`; `alpha → 0` recovers [`FrequencyModel`].
    pub alpha: f64,
}

impl Default for EwmaModel {
    fn default() -> Self {
        EwmaModel { alpha: 0.3 }
    }
}

impl UsageModel for EwmaModel {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn usage_probability(&self, history: &HourlyHistory, kind: DayKind) -> [f64; HOURS_PER_DAY] {
        let alpha = self.alpha.clamp(1e-6, 1.0);
        let rows: Vec<(usize, &[u64; HOURS_PER_DAY])> = history
            .counts
            .iter()
            .zip(&history.kinds)
            .enumerate()
            .filter(|(_, (_, k))| **k == kind)
            .map(|(i, (c, _))| (i, c))
            .collect();
        let mut probs = [0.0; HOURS_PER_DAY];
        if rows.is_empty() {
            return probs;
        }
        let newest = rows.last().map(|&(i, _)| i).unwrap_or(0);
        let mut weight_sum = 0.0;
        for &(i, row) in &rows {
            let age = (newest - i) as f64;
            let w = (1.0 - alpha).powf(age);
            weight_sum += w;
            for (h, &c) in row.iter().enumerate() {
                if c > 0 {
                    probs[h] += w;
                }
            }
        }
        for p in &mut probs {
            *p /= weight_sum;
        }
        probs
    }
}

/// Frequency model smoothed across adjacent hours (wrap-around kernel
/// `[spill, 1, spill]`), crediting shoulder hours so slots grow one
/// hour of margin on each side as `spill → 1`.
#[derive(Debug, Clone, Copy)]
pub struct SmoothedModel {
    /// Neighbour weight in `[0, 1]`.
    pub spill: f64,
}

impl Default for SmoothedModel {
    fn default() -> Self {
        SmoothedModel { spill: 0.35 }
    }
}

impl UsageModel for SmoothedModel {
    fn name(&self) -> &'static str {
        "smoothed"
    }

    fn usage_probability(&self, history: &HourlyHistory, kind: DayKind) -> [f64; HOURS_PER_DAY] {
        let base = history.usage_probability(kind);
        let s = self.spill.clamp(0.0, 1.0);
        let mut out = [0.0; HOURS_PER_DAY];
        for h in 0..HOURS_PER_DAY {
            let prev = base[(h + HOURS_PER_DAY - 1) % HOURS_PER_DAY];
            let next = base[(h + 1) % HOURS_PER_DAY];
            // Max-combine rather than average: smoothing must never
            // *reduce* an hour's probability (that would raise
            // interrupt risk), only lift shoulders.
            out[h] = base[h].max(s * prev).max(s * next);
        }
        out
    }
}

/// Thresholds any model's probabilities into an
/// [`ActiveSlotPrediction`] (the δ rule of §IV-C1).
pub fn predict_with(
    model: &dyn UsageModel,
    history: &HourlyHistory,
    cfg: PredictionConfig,
) -> ActiveSlotPrediction {
    let prob_weekday = model.usage_probability(history, DayKind::Weekday);
    let prob_weekend = model.usage_probability(history, DayKind::Weekend);
    let mut weekday = [false; HOURS_PER_DAY];
    let mut weekend = [false; HOURS_PER_DAY];
    for h in 0..HOURS_PER_DAY {
        weekday[h] = prob_weekday[h] > cfg.delta_weekday;
        weekend[h] = prob_weekend[h] > cfg.delta_weekend;
    }
    ActiveSlotPrediction {
        weekday,
        weekend,
        prob_weekday,
        prob_weekend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::{predict_active_slots, prediction_accuracy};
    use netmaster_trace::gen::TraceGenerator;
    use netmaster_trace::profile::UserProfile;

    /// History where the user's evening habit moved from hour 8 to
    /// hour 20 three days ago.
    fn drifted_history() -> HourlyHistory {
        let mut h = HourlyHistory::default();
        for i in 0..10 {
            let mut row = [0u64; HOURS_PER_DAY];
            if i < 7 {
                row[8] = 3;
            } else {
                row[20] = 3;
            }
            h.counts.push(row);
            h.kinds.push(DayKind::Weekday);
        }
        h
    }

    #[test]
    fn frequency_model_matches_eq2() {
        let h = drifted_history();
        let freq = FrequencyModel.usage_probability(&h, DayKind::Weekday);
        assert!((freq[8] - 0.7).abs() < 1e-12);
        assert!((freq[20] - 0.3).abs() < 1e-12);
        // And predict_with(FrequencyModel) == predict_active_slots.
        let cfg = PredictionConfig::uniform(0.25);
        let a = predict_with(&FrequencyModel, &h, cfg);
        let b = predict_active_slots(&h, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn ewma_adapts_to_habit_drift() {
        let h = drifted_history();
        let ewma = EwmaModel { alpha: 0.5 }.usage_probability(&h, DayKind::Weekday);
        let freq = FrequencyModel.usage_probability(&h, DayKind::Weekday);
        // The new 20h habit dominates for EWMA but not for frequency.
        assert!(ewma[20] > 0.8, "ewma[20] = {}", ewma[20]);
        assert!(ewma[8] < 0.2, "ewma[8] = {}", ewma[8]);
        assert!(freq[8] > freq[20]);
        // With the paper's δ = 0.2, EWMA drops the stale hour.
        let pred = predict_with(
            &EwmaModel { alpha: 0.5 },
            &h,
            PredictionConfig::uniform(0.2),
        );
        assert!(pred.weekday[20]);
        assert!(!pred.weekday[8]);
    }

    #[test]
    fn ewma_with_tiny_alpha_recovers_frequency() {
        let h = drifted_history();
        let ewma = EwmaModel { alpha: 1e-6 }.usage_probability(&h, DayKind::Weekday);
        let freq = FrequencyModel.usage_probability(&h, DayKind::Weekday);
        for hh in 0..HOURS_PER_DAY {
            assert!((ewma[hh] - freq[hh]).abs() < 1e-3, "hour {hh}");
        }
    }

    #[test]
    fn smoothing_lifts_shoulders_only() {
        let h = drifted_history();
        let base = FrequencyModel.usage_probability(&h, DayKind::Weekday);
        let smooth = SmoothedModel { spill: 0.5 }.usage_probability(&h, DayKind::Weekday);
        for hh in 0..HOURS_PER_DAY {
            assert!(smooth[hh] >= base[hh] - 1e-12, "never reduces: hour {hh}");
        }
        assert!(
            smooth[7] > 0.0 && smooth[9] > 0.0,
            "shoulders of hour 8 lift"
        );
        assert!((smooth[7] - 0.5 * base[8]).abs() < 1e-12);
        // Wrap-around: hour 23 gets spill from hour 0 usage.
        let mut hh = HourlyHistory::default();
        let mut row = [0u64; HOURS_PER_DAY];
        row[0] = 1;
        hh.counts.push(row);
        hh.kinds.push(DayKind::Weekday);
        let s = SmoothedModel { spill: 0.4 }.usage_probability(&hh, DayKind::Weekday);
        assert!((s[23] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn models_agree_on_steady_habits() {
        // On a regular user with no drift, all three models predict
        // nearly identical slots at the deployment δ.
        let trace = TraceGenerator::new(UserProfile::panel().remove(3))
            .with_seed(4)
            .generate(14);
        let h = HourlyHistory::from_trace(&trace);
        let cfg = PredictionConfig::default();
        let freq = predict_with(&FrequencyModel, &h, cfg);
        let ewma = predict_with(&EwmaModel::default(), &h, cfg);
        let differing = (0..HOURS_PER_DAY)
            .filter(|&hh| freq.weekday[hh] != ewma.weekday[hh])
            .count();
        assert!(differing <= 3, "{differing} hours differ on a steady user");
    }

    #[test]
    fn accuracy_comparable_across_models_on_test_week() {
        let trace = TraceGenerator::new(UserProfile::panel().remove(0))
            .with_seed(6)
            .generate(21);
        let train = trace.slice_days(0, 14);
        let test = trace.slice_days(14, 21);
        let h = HourlyHistory::from_trace(&train);
        let cfg = PredictionConfig::default();
        let models: [&dyn UsageModel; 3] = [
            &FrequencyModel,
            &EwmaModel::default(),
            &SmoothedModel::default(),
        ];
        for m in models {
            let acc = prediction_accuracy(&predict_with(m, &h, cfg), &test);
            assert!(acc > 0.8, "{}: accuracy {acc}", m.name());
        }
    }

    #[test]
    fn empty_history_is_safe() {
        let h = HourlyHistory::default();
        for m in [
            &EwmaModel::default() as &dyn UsageModel,
            &SmoothedModel::default(),
        ] {
            let p = m.usage_probability(&h, DayKind::Weekend);
            assert_eq!(p, [0.0; HOURS_PER_DAY], "{}", m.name());
        }
    }
}
