//! "Special Apps" detection (§IV-C2).
//!
//! A Special App is one "used at least once along with network
//! activities" — for user 3 of Fig. 5 only 8 of 23 installed apps
//! qualify. The real-time adjustment layer tracks only these apps:
//! a foreground Special App outside predicted slots wakes the radio;
//! anything else does not. Newly installed apps default to Special
//! until profiled, to avoid false denials.

use netmaster_trace::event::AppId;
use netmaster_trace::trace::{DayTrace, Trace};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The per-user Special Apps profile.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpecialApps {
    special: HashSet<AppId>,
    /// Apps seen at all during profiling (used or trafficking).
    known: HashSet<AppId>,
    /// Interaction counts per app (Fig. 5's usage totals).
    usage: HashMap<AppId, u64>,
    /// Apps with at least one network activity.
    networked: HashSet<AppId>,
}

impl SpecialApps {
    /// Profiles a training trace: an app is Special when it was used at
    /// least once *and* produced at least one network activity.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = SpecialApps::default();
        for day in &trace.days {
            s.observe_day(day);
        }
        s
    }

    /// Folds one day into the profile — the incremental equivalent of
    /// re-running [`SpecialApps::from_trace`] over the grown history.
    /// The Special set is maintained on the fly: an app enters it the
    /// moment it has both an interaction and a network activity on
    /// record.
    pub fn observe_day(&mut self, day: &DayTrace) {
        for i in &day.interactions {
            *self.usage.entry(i.app).or_insert(0) += 1;
            self.known.insert(i.app);
            if self.networked.contains(&i.app) {
                self.special.insert(i.app);
            }
        }
        for a in &day.activities {
            self.networked.insert(a.app);
            self.known.insert(a.app);
            if self.usage.contains_key(&a.app) {
                self.special.insert(a.app);
            }
        }
    }

    /// Is this app Special? Unknown (newly installed) apps are treated
    /// as Special until profiled, as the paper prescribes.
    pub fn is_special(&self, app: AppId) -> bool {
        self.special.contains(&app) || !self.known.contains(&app)
    }

    /// Is the app known from profiling at all?
    pub fn is_known(&self, app: AppId) -> bool {
        self.known.contains(&app)
    }

    /// Number of profiled Special Apps (excludes the unknown-app default).
    pub fn count(&self) -> usize {
        self.special.len()
    }

    /// Number of apps seen during profiling.
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// Interaction count recorded for an app.
    pub fn usage_count(&self, app: AppId) -> u64 {
        self.usage.get(&app).copied().unwrap_or(0)
    }

    /// The most-used Special App and its count (WeChat for user 3:
    /// 669 uses, 59% of all usage).
    pub fn dominant(&self) -> Option<(AppId, u64)> {
        self.special
            .iter()
            .map(|&a| (a, self.usage_count(a)))
            .max_by_key(|&(_, c)| c)
    }

    /// Fraction of all interactions owned by an app.
    pub fn usage_share(&self, app: AppId) -> f64 {
        let total: u64 = self.usage.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.usage_count(app) as f64 / total as f64
    }

    /// Registers a newly observed app as Special (paper: "when meeting
    /// a new installed app, we first recognize it as Special Apps").
    pub fn admit(&mut self, app: AppId) {
        self.special.insert(app);
        self.known.insert(app);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmaster_trace::gen::TraceGenerator;
    use netmaster_trace::profile::UserProfile;

    fn user3_trace() -> Trace {
        TraceGenerator::new(UserProfile::panel().remove(2))
            .with_seed(35)
            .generate(7)
    }

    #[test]
    fn special_requires_usage_and_network() {
        let t = user3_trace();
        let s = SpecialApps::from_trace(&t);
        // Offline apps that were used (contacts/phone/settings) are known
        // but not special.
        let contacts = t.apps.lookup("com.android.contacts").unwrap();
        if s.is_known(contacts) {
            assert!(!s.is_special(contacts), "contacts has no network traffic");
        }
        // The messenger is both used and networked.
        let mm = t.apps.lookup("com.tencent.mm").unwrap();
        assert!(s.is_special(mm));
        assert!(
            s.count() >= 3,
            "expect several special apps, got {}",
            s.count()
        );
        assert!(s.count() < s.known_count(), "special must filter something");
    }

    #[test]
    fn unknown_apps_default_to_special() {
        let t = user3_trace();
        let s = SpecialApps::from_trace(&t);
        let never_seen = AppId(9_999);
        assert!(s.is_special(never_seen));
        assert!(!s.is_known(never_seen));
    }

    #[test]
    fn admit_registers_new_app() {
        let mut s = SpecialApps::default();
        let app = AppId(7);
        s.admit(app);
        assert!(s.is_special(app));
        assert!(s.is_known(app));
        assert_eq!(s.usage_count(app), 0);
    }

    #[test]
    fn messenger_dominates_user3_usage() {
        // Fig. 5: weChat is 59% of user 3's usage.
        let t = user3_trace();
        let s = SpecialApps::from_trace(&t);
        let (app, uses) = s.dominant().expect("user 3 has special apps");
        assert_eq!(t.apps.name(app), Some("com.tencent.mm"));
        assert!(uses > 50, "dominant app should be heavily used: {uses}");
        assert!(
            s.usage_share(app) > 0.4,
            "weChat share should dominate: {}",
            s.usage_share(app)
        );
    }

    #[test]
    fn empty_trace_profiles_to_nothing() {
        let s = SpecialApps::from_trace(&Trace::new(1));
        assert_eq!(s.count(), 0);
        assert_eq!(s.known_count(), 0);
        assert_eq!(s.dominant(), None);
        assert_eq!(s.usage_share(AppId(0)), 0.0);
    }
}
