//! "Special Apps" detection (§IV-C2).
//!
//! A Special App is one "used at least once along with network
//! activities" — for user 3 of Fig. 5 only 8 of 23 installed apps
//! qualify. The real-time adjustment layer tracks only these apps:
//! a foreground Special App outside predicted slots wakes the radio;
//! anything else does not. Newly installed apps default to Special
//! until profiled, to avoid false denials.

use netmaster_trace::event::AppId;
use netmaster_trace::trace::{DayTrace, Trace};
use serde::{Deserialize, Serialize};

const KNOWN: u8 = 1;
const NETWORKED: u8 = 2;
const SPECIAL: u8 = 4;

/// The per-user Special Apps profile.
///
/// `AppId` is a small dense `u16`, so the profile is flat arrays
/// indexed by app id — `observe_day` runs on the mining hot path once
/// per day per member, and hashing every interaction dominated it.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpecialApps {
    /// Per-app state bits ([`KNOWN`] | [`NETWORKED`] | [`SPECIAL`]),
    /// indexed by app id; apps past the end are unseen.
    flags: Vec<u8>,
    /// Interaction counts per app (Fig. 5's usage totals).
    usage: Vec<u64>,
    /// Number of apps with the [`SPECIAL`] bit.
    special_count: usize,
    /// Number of apps with the [`KNOWN`] bit.
    known_count: usize,
}

impl SpecialApps {
    /// Profiles a training trace: an app is Special when it was used at
    /// least once *and* produced at least one network activity.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = SpecialApps::default();
        for day in &trace.days {
            s.observe_day(day);
        }
        s
    }

    /// Folds one day into the profile — the incremental equivalent of
    /// re-running [`SpecialApps::from_trace`] over the grown history.
    /// The Special set is maintained on the fly: an app enters it the
    /// moment it has both an interaction and a network activity on
    /// record.
    pub fn observe_day(&mut self, day: &DayTrace) {
        for i in &day.interactions {
            let s = self.slot(i.app);
            self.usage[s] += 1;
            let f = self.flags[s];
            self.set_flags(s, f | KNOWN | if f & NETWORKED != 0 { SPECIAL } else { 0 });
        }
        for a in &day.activities {
            let s = self.slot(a.app);
            let f = self.flags[s];
            let used = self.usage[s] > 0;
            self.set_flags(s, f | KNOWN | NETWORKED | if used { SPECIAL } else { 0 });
        }
    }

    /// Index for an app, growing the arrays to cover it.
    fn slot(&mut self, app: AppId) -> usize {
        let i = app.0 as usize;
        if i >= self.flags.len() {
            self.flags.resize(i + 1, 0);
            self.usage.resize(i + 1, 0);
        }
        i
    }

    /// Writes an app's flag byte, keeping the derived counts in step.
    fn set_flags(&mut self, slot: usize, new: u8) {
        let old = self.flags[slot];
        self.known_count += usize::from(new & KNOWN != 0 && old & KNOWN == 0);
        self.special_count += usize::from(new & SPECIAL != 0 && old & SPECIAL == 0);
        self.flags[slot] = new;
    }

    /// Is this app Special? Unknown (newly installed) apps are treated
    /// as Special until profiled, as the paper prescribes.
    pub fn is_special(&self, app: AppId) -> bool {
        match self.flags.get(app.0 as usize) {
            Some(&f) => f & SPECIAL != 0 || f & KNOWN == 0,
            None => true,
        }
    }

    /// Is the app known from profiling at all?
    pub fn is_known(&self, app: AppId) -> bool {
        self.flags
            .get(app.0 as usize)
            .is_some_and(|&f| f & KNOWN != 0)
    }

    /// Number of profiled Special Apps (excludes the unknown-app default).
    pub fn count(&self) -> usize {
        self.special_count
    }

    /// Number of apps seen during profiling.
    pub fn known_count(&self) -> usize {
        self.known_count
    }

    /// Interaction count recorded for an app.
    pub fn usage_count(&self, app: AppId) -> u64 {
        self.usage.get(app.0 as usize).copied().unwrap_or(0)
    }

    /// The most-used Special App and its count (WeChat for user 3:
    /// 669 uses, 59% of all usage).
    pub fn dominant(&self) -> Option<(AppId, u64)> {
        self.flags
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f & SPECIAL != 0)
            .map(|(i, _)| (AppId(i as u16), self.usage[i]))
            .max_by_key(|&(_, c)| c)
    }

    /// Fraction of all interactions owned by an app.
    pub fn usage_share(&self, app: AppId) -> f64 {
        let total: u64 = self.usage.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.usage_count(app) as f64 / total as f64
    }

    /// Registers a newly observed app as Special (paper: "when meeting
    /// a new installed app, we first recognize it as Special Apps").
    pub fn admit(&mut self, app: AppId) {
        let s = self.slot(app);
        let f = self.flags[s];
        self.set_flags(s, f | KNOWN | SPECIAL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmaster_trace::gen::TraceGenerator;
    use netmaster_trace::profile::UserProfile;

    fn user3_trace() -> Trace {
        TraceGenerator::new(UserProfile::panel().remove(2))
            .with_seed(35)
            .generate(7)
    }

    #[test]
    fn special_requires_usage_and_network() {
        let t = user3_trace();
        let s = SpecialApps::from_trace(&t);
        // Offline apps that were used (contacts/phone/settings) are known
        // but not special.
        let contacts = t.apps.lookup("com.android.contacts").unwrap();
        if s.is_known(contacts) {
            assert!(!s.is_special(contacts), "contacts has no network traffic");
        }
        // The messenger is both used and networked.
        let mm = t.apps.lookup("com.tencent.mm").unwrap();
        assert!(s.is_special(mm));
        assert!(
            s.count() >= 3,
            "expect several special apps, got {}",
            s.count()
        );
        assert!(s.count() < s.known_count(), "special must filter something");
    }

    #[test]
    fn unknown_apps_default_to_special() {
        let t = user3_trace();
        let s = SpecialApps::from_trace(&t);
        let never_seen = AppId(9_999);
        assert!(s.is_special(never_seen));
        assert!(!s.is_known(never_seen));
    }

    #[test]
    fn admit_registers_new_app() {
        let mut s = SpecialApps::default();
        let app = AppId(7);
        s.admit(app);
        assert!(s.is_special(app));
        assert!(s.is_known(app));
        assert_eq!(s.usage_count(app), 0);
    }

    #[test]
    fn messenger_dominates_user3_usage() {
        // Fig. 5: weChat is 59% of user 3's usage.
        let t = user3_trace();
        let s = SpecialApps::from_trace(&t);
        let (app, uses) = s.dominant().expect("user 3 has special apps");
        assert_eq!(t.apps.name(app), Some("com.tencent.mm"));
        assert!(uses > 50, "dominant app should be heavily used: {uses}");
        assert!(
            s.usage_share(app) > 0.4,
            "weChat share should dominate: {}",
            s.usage_share(app)
        );
    }

    #[test]
    fn empty_trace_profiles_to_nothing() {
        let s = SpecialApps::from_trace(&Trace::new(1));
        assert_eq!(s.count(), 0);
        assert_eq!(s.known_count(), 0);
        assert_eq!(s.dominant(), None);
        assert_eq!(s.usage_share(AppId(0)), 0.0);
    }
}
