//! Habit stability: is this user predictable enough for NetMaster?
//!
//! The paper's Fig. 4 observation — a user's days correlate strongly —
//! is the precondition for everything downstream. This module turns it
//! into an operational score: the rolling Pearson correlation between
//! each day and the trailing same-kind usage pattern. A stable habit
//! scores near 1; a schedule change shows up as a dip the middleware
//! can react to (e.g. by discounting stale history, see
//! [`EwmaModel`](crate::EwmaModel)).

use crate::intensity::HourlyHistory;
use crate::pearson::pearson;
use netmaster_trace::time::{DayKind, HOURS_PER_DAY};
use serde::{Deserialize, Serialize};

/// Stability analysis of one user's history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Per-day correlation of that day's usage vector with the mean of
    /// the preceding same-kind days (NaN-free: days without a valid
    /// reference are skipped). `(day_index, correlation)`.
    pub series: Vec<(usize, f64)>,
    /// Mean of the series — the user's overall habit stability.
    pub score: f64,
}

impl StabilityReport {
    /// Day indices whose correlation sits more than `drop` below the
    /// running mean of the preceding points — candidate habit breaks.
    pub fn drift_days(&self, drop: f64) -> Vec<usize> {
        let mut out = Vec::new();
        let mut sum = 0.0;
        for (i, &(day, r)) in self.series.iter().enumerate() {
            if i >= 3 {
                let mean_before = sum / i as f64;
                if r < mean_before - drop {
                    out.push(day);
                }
            }
            sum += r;
        }
        out
    }

    /// `true` when the habit is stable enough for hour-level prediction
    /// (the paper's panel averages 0.54; below ~0.2 the miner is
    /// guessing).
    pub fn is_predictable(&self) -> bool {
        self.score > 0.2
    }
}

/// Computes the stability report over a history. Each day of kind `k`
/// is correlated against the mean intensity vector of all *prior* days
/// of kind `k` (at least `min_reference` of them).
///
/// ```
/// use netmaster_mining::{habit_stability, HourlyHistory};
/// use netmaster_trace::gen::generate_panel;
///
/// let trace = &generate_panel(21, 7)[3]; // the metronomic commuter
/// let report = habit_stability(&HourlyHistory::from_trace(trace));
/// assert!(report.score > 0.5);
/// assert!(report.is_predictable());
/// ```
pub fn habit_stability(history: &HourlyHistory) -> StabilityReport {
    habit_stability_with(history, 2)
}

/// [`habit_stability`] with an explicit minimum reference-day count.
pub fn habit_stability_with(history: &HourlyHistory, min_reference: usize) -> StabilityReport {
    let mut series = Vec::new();
    for (d, (row, kind)) in history.counts.iter().zip(&history.kinds).enumerate() {
        // Mean vector of prior same-kind days.
        let mut reference = [0.0f64; HOURS_PER_DAY];
        let mut n = 0usize;
        for (prev_row, prev_kind) in history.counts[..d].iter().zip(&history.kinds[..d]) {
            if prev_kind == kind {
                for (h, &c) in prev_row.iter().enumerate() {
                    reference[h] += c as f64;
                }
                n += 1;
            }
        }
        if n < min_reference {
            continue;
        }
        for r in &mut reference {
            *r /= n as f64;
        }
        let today: Vec<f64> = row.iter().map(|&c| c as f64).collect();
        series.push((d, pearson(&today, &reference)));
    }
    let score = if series.is_empty() {
        0.0
    } else {
        series.iter().map(|&(_, r)| r).sum::<f64>() / series.len() as f64
    };
    StabilityReport { series, score }
}

/// Stability of one day kind only (weekdays or weekends).
pub fn habit_stability_for(history: &HourlyHistory, kind: DayKind) -> StabilityReport {
    let filtered = HourlyHistory {
        counts: history
            .counts
            .iter()
            .zip(&history.kinds)
            .filter(|(_, k)| **k == kind)
            .map(|(c, _)| *c)
            .collect(),
        kinds: history
            .kinds
            .iter()
            .filter(|k| **k == kind)
            .copied()
            .collect(),
    };
    habit_stability(&filtered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmaster_trace::gen::TraceGenerator;
    use netmaster_trace::profile::UserProfile;
    use netmaster_trace::scenario;

    fn history_for(user: usize, days: usize, seed: u64) -> HourlyHistory {
        let trace = TraceGenerator::new(UserProfile::panel().remove(user))
            .with_seed(seed)
            .generate(days);
        HourlyHistory::from_trace(&trace)
    }

    #[test]
    fn regular_commuter_scores_high() {
        let h = history_for(3, 21, 11); // user 4
        let r = habit_stability(&h);
        assert!(r.score > 0.6, "commuter stability {}", r.score);
        assert!(r.is_predictable());
        assert!(!r.series.is_empty());
    }

    #[test]
    fn light_user_scores_lower_than_commuter_on_average() {
        // A single 3-week window is noisy; compare over several seeds.
        let seeds = [7u64, 11, 23, 42];
        let mean = |user: usize| {
            seeds
                .iter()
                .map(|&s| habit_stability(&history_for(user, 21, s)).score)
                .sum::<f64>()
                / seeds.len() as f64
        };
        let commuter = mean(3); // user 4, regularity 0.90
        let light = mean(5); // user 6, regularity 0.48
        assert!(
            light < commuter + 0.02,
            "light {light:.3} vs commuter {commuter:.3}"
        );
    }

    #[test]
    fn schedule_change_is_detected_as_drift() {
        let trace = scenario::schedule_change(21, 12, 3);
        let h = HourlyHistory::from_trace(&trace);
        let r = habit_stability(&h);
        let drifts = r.drift_days(0.3);
        // The shift to night work around day 12 must register.
        assert!(
            drifts.iter().any(|&d| (12..16).contains(&d)),
            "drift days {drifts:?} miss the day-12 schedule change"
        );
        // And a steady user of the same length must NOT.
        let steady = habit_stability(&history_for(3, 21, 3));
        let false_alarms = steady.drift_days(0.3);
        assert!(
            false_alarms.len() <= 2,
            "steady user flagged too often: {false_alarms:?}"
        );
    }

    #[test]
    fn empty_and_short_histories_are_safe() {
        let r = habit_stability(&HourlyHistory::default());
        assert_eq!(r.series.len(), 0);
        assert_eq!(r.score, 0.0);
        assert!(!r.is_predictable());
        // Two days: the first same-kind day lacks references.
        let h = history_for(0, 2, 1);
        let r = habit_stability(&h);
        assert!(r.series.len() <= 1);
    }

    #[test]
    fn per_kind_stability_separates_weekends() {
        let h = history_for(7, 21, 9); // weekend warrior
        let wd = habit_stability_for(&h, DayKind::Weekday);
        let we = habit_stability_for(&h, DayKind::Weekend);
        // Both defined; series lengths reflect day counts (15 wd, 6 we
        // in 21 days, minus reference warm-up).
        assert!(wd.series.len() > we.series.len());
        for (_, r) in wd.series.iter().chain(&we.series) {
            assert!((-1.0..=1.0).contains(r));
        }
    }
}
