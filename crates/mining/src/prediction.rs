//! Hour-level prediction of user active slots (Eq. 2) and screen-off
//! network active slots (Eq. 3), with the paper's impact-based δ
//! threshold strategy (§IV-C1).

use crate::intensity::HourlyHistory;
use netmaster_trace::time::{DayIndex, DayKind, Interval, Timestamp, HOURS_PER_DAY};
use netmaster_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// Threshold configuration. The paper chooses small interrupt budgets —
/// δ = 0.2 on weekdays, δ = 0.1 on weekends — trading energy for user
/// experience (Fig. 10(c) puts the energy/accuracy balance at δ≈0.37).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionConfig {
    /// Max tolerated interrupt probability on weekdays.
    pub delta_weekday: f64,
    /// Max tolerated interrupt probability on weekends.
    pub delta_weekend: f64,
}

impl Default for PredictionConfig {
    fn default() -> Self {
        PredictionConfig {
            delta_weekday: 0.2,
            delta_weekend: 0.1,
        }
    }
}

impl PredictionConfig {
    /// δ for a given day kind.
    pub fn delta(&self, kind: DayKind) -> f64 {
        match kind {
            DayKind::Weekday => self.delta_weekday,
            DayKind::Weekend => self.delta_weekend,
        }
    }

    /// A single δ for both day kinds (used in the Fig. 10(c) sweep).
    pub fn uniform(delta: f64) -> Self {
        PredictionConfig {
            delta_weekday: delta,
            delta_weekend: delta,
        }
    }
}

/// Predicted user active slots, per day kind.
///
/// An hour is *active* when `Pr[u(t_i)] > δ` — the impact-based
/// strategy: by construction the maximum usage probability among the
/// hours declared inactive is at most δ, bounding the expected chance
/// of an undesired interrupt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveSlotPrediction {
    /// Active flags per hour, weekdays.
    pub weekday: [bool; HOURS_PER_DAY],
    /// Active flags per hour, weekends.
    pub weekend: [bool; HOURS_PER_DAY],
    /// `Pr[u(t_i)]` per hour, weekdays.
    pub prob_weekday: [f64; HOURS_PER_DAY],
    /// `Pr[u(t_i)]` per hour, weekends.
    pub prob_weekend: [f64; HOURS_PER_DAY],
}

impl ActiveSlotPrediction {
    /// Active-hour flags for a day kind.
    pub fn hours(&self, kind: DayKind) -> &[bool; HOURS_PER_DAY] {
        match kind {
            DayKind::Weekday => &self.weekday,
            DayKind::Weekend => &self.weekend,
        }
    }

    /// Usage probabilities for a day kind.
    pub fn probs(&self, kind: DayKind) -> &[f64; HOURS_PER_DAY] {
        match kind {
            DayKind::Weekday => &self.prob_weekday,
            DayKind::Weekend => &self.prob_weekend,
        }
    }

    /// `Pr[u(t)]` at a timestamp.
    pub fn prob_at(&self, t: Timestamp) -> f64 {
        self.probs(DayKind::of_timestamp(t))[netmaster_trace::time::hour_of(t)]
    }

    /// `true` when the timestamp falls in a predicted active slot.
    pub fn is_active(&self, t: Timestamp) -> bool {
        self.hours(DayKind::of_timestamp(t))[netmaster_trace::time::hour_of(t)]
    }

    /// The merged active slots of one absolute day, as intervals
    /// (contiguous active hours fuse into one slot — the paper's slot
    /// set `U`; slots "don't have a fixed length").
    pub fn slots_for_day(&self, day: DayIndex) -> Vec<Interval> {
        let hours = self.hours(DayKind::of_day(day));
        let mut out = Vec::new();
        let mut h = 0;
        while h < HOURS_PER_DAY {
            if hours[h] {
                let start = h;
                while h < HOURS_PER_DAY && hours[h] {
                    h += 1;
                }
                out.push(Interval::new(
                    netmaster_trace::time::at_hour(day, start),
                    netmaster_trace::time::at_hour(day, h - 1)
                        + netmaster_trace::time::SECS_PER_HOUR,
                ));
            } else {
                h += 1;
            }
        }
        out
    }

    /// Number of active hours for a day kind.
    pub fn active_hour_count(&self, kind: DayKind) -> usize {
        self.hours(kind).iter().filter(|&&b| b).count()
    }

    /// Max `Pr[u]` among inactive hours — the realized interrupt bound;
    /// by construction ≤ δ.
    pub fn residual_risk(&self, kind: DayKind) -> f64 {
        self.hours(kind)
            .iter()
            .zip(self.probs(kind))
            .filter(|(active, _)| !**active)
            .map(|(_, p)| *p)
            .fold(0.0, f64::max)
    }
}

/// Predicts user active slots from history with the given thresholds
/// (Eq. 2 with thr(u) = δ per day kind).
pub fn predict_active_slots(
    history: &HourlyHistory,
    cfg: PredictionConfig,
) -> ActiveSlotPrediction {
    let prob_weekday = history.usage_probability(DayKind::Weekday);
    let prob_weekend = history.usage_probability(DayKind::Weekend);
    let mut weekday = [false; HOURS_PER_DAY];
    let mut weekend = [false; HOURS_PER_DAY];
    for h in 0..HOURS_PER_DAY {
        weekday[h] = prob_weekday[h] > cfg.delta_weekday;
        weekend[h] = prob_weekend[h] > cfg.delta_weekend;
    }
    ActiveSlotPrediction {
        weekday,
        weekend,
        prob_weekday,
        prob_weekend,
    }
}

/// One app's predicted screen-off activity per hour — the `n(p_m, t_i)`
/// of Eq. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppNetworkPrediction {
    /// Which app.
    pub app: netmaster_trace::event::AppId,
    /// Expected screen-off activities per hour-of-day.
    pub expected_count: [f64; HOURS_PER_DAY],
    /// Expected screen-off bytes per hour-of-day.
    pub expected_bytes: [f64; HOURS_PER_DAY],
}

impl AppNetworkPrediction {
    /// This app's expected screen-off activities per day.
    pub fn daily_count(&self) -> f64 {
        self.expected_count.iter().sum()
    }
}

/// Predicted screen-off network activity (Eq. 3): expected activity
/// count and byte volume per hour, estimated from history — aggregate
/// and per app (`n(p_m, t_i)` keeps the app dimension, which the
/// scheduler uses to size items). Hours with any observed screen-off
/// traffic are *network active slots* (`T_n`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPrediction {
    /// Expected screen-off activities per hour-of-day (all apps).
    pub expected_count: [f64; HOURS_PER_DAY],
    /// Expected screen-off bytes per hour-of-day (all apps).
    pub expected_bytes: [f64; HOURS_PER_DAY],
    /// `Pr[n(t_i)] > 0` — hour saw screen-off traffic at least once.
    pub active: [bool; HOURS_PER_DAY],
    /// Per-app breakdown, sorted by descending daily count.
    pub per_app: Vec<AppNetworkPrediction>,
}

impl NetworkPrediction {
    /// Extracts the prediction from a training trace.
    pub fn from_trace(trace: &Trace) -> Self {
        use std::collections::HashMap;
        let mut count = [0.0; HOURS_PER_DAY];
        let mut bytes = [0.0; HOURS_PER_DAY];
        let mut apps: HashMap<
            netmaster_trace::event::AppId,
            ([f64; HOURS_PER_DAY], [f64; HOURS_PER_DAY]),
        > = HashMap::new();
        let days = trace.num_days().max(1) as f64;
        for day in &trace.days {
            for a in day.screen_off_activities() {
                let h = netmaster_trace::time::hour_of(a.start);
                count[h] += 1.0;
                bytes[h] += a.volume() as f64;
                let entry = apps
                    .entry(a.app)
                    .or_insert(([0.0; HOURS_PER_DAY], [0.0; HOURS_PER_DAY]));
                entry.0[h] += 1.0;
                entry.1[h] += a.volume() as f64;
            }
        }
        let mut active = [false; HOURS_PER_DAY];
        for h in 0..HOURS_PER_DAY {
            count[h] /= days;
            bytes[h] /= days;
            active[h] = count[h] > 0.0;
        }
        let mut per_app: Vec<AppNetworkPrediction> = apps
            .into_iter()
            .map(|(app, (mut c, mut b))| {
                for h in 0..HOURS_PER_DAY {
                    c[h] /= days;
                    b[h] /= days;
                }
                AppNetworkPrediction {
                    app,
                    expected_count: c,
                    expected_bytes: b,
                }
            })
            .collect();
        // Tie-break by app id so the ordering (and everything downstream,
        // e.g. knapsack item order) is deterministic — HashMap iteration
        // order is not.
        per_app.sort_by(|a, b| {
            b.daily_count()
                .total_cmp(&a.daily_count())
                .then_with(|| a.app.cmp(&b.app))
        });
        NetworkPrediction {
            expected_count: count,
            expected_bytes: bytes,
            active,
            per_app,
        }
    }

    /// Total expected screen-off activities per day.
    pub fn daily_count(&self) -> f64 {
        self.expected_count.iter().sum()
    }

    /// Total expected screen-off bytes per day.
    pub fn daily_bytes(&self) -> f64 {
        self.expected_bytes.iter().sum()
    }

    /// Number of apps with predicted screen-off traffic.
    pub fn app_count(&self) -> usize {
        self.per_app.len()
    }
}

/// Prediction accuracy on a held-out trace: the fraction of actual
/// interactions that fall inside predicted active slots (the metric of
/// Fig. 10(c)). Returns 1.0 for a trace with no interactions.
pub fn prediction_accuracy(pred: &ActiveSlotPrediction, test: &Trace) -> f64 {
    let mut total = 0usize;
    let mut hit = 0usize;
    for i in test.all_interactions() {
        total += 1;
        if pred.is_active(i.at) {
            hit += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmaster_trace::gen::TraceGenerator;
    use netmaster_trace::profile::UserProfile;
    use netmaster_trace::time::SECS_PER_HOUR;

    fn history(rows: &[(DayKind, [u64; 24])]) -> HourlyHistory {
        HourlyHistory {
            counts: rows.iter().map(|r| r.1).collect(),
            kinds: rows.iter().map(|r| r.0).collect(),
        }
    }

    fn row(hours: &[usize]) -> [u64; 24] {
        let mut r = [0u64; 24];
        for &h in hours {
            r[h] = 1;
        }
        r
    }

    #[test]
    fn threshold_splits_active_hours() {
        // Hour 8 used 3/3 weekdays, hour 12 used 1/3.
        let h = history(&[
            (DayKind::Weekday, row(&[8, 12])),
            (DayKind::Weekday, row(&[8])),
            (DayKind::Weekday, row(&[8])),
        ]);
        let pred = predict_active_slots(&h, PredictionConfig::uniform(0.5));
        assert!(pred.weekday[8]);
        assert!(!pred.weekday[12], "1/3 < δ=0.5");
        // Lower δ admits hour 12.
        let pred = predict_active_slots(&h, PredictionConfig::uniform(0.2));
        assert!(pred.weekday[12]);
    }

    #[test]
    fn residual_risk_is_bounded_by_delta() {
        let h = history(&[
            (DayKind::Weekday, row(&[7, 8, 9])),
            (DayKind::Weekday, row(&[8, 13])),
            (DayKind::Weekday, row(&[8, 9, 21])),
            (DayKind::Weekday, row(&[8, 21])),
        ]);
        for delta in [0.1, 0.2, 0.3, 0.5, 0.8] {
            let pred = predict_active_slots(&h, PredictionConfig::uniform(delta));
            assert!(
                pred.residual_risk(DayKind::Weekday) <= delta + 1e-12,
                "δ={delta}: residual {}",
                pred.residual_risk(DayKind::Weekday)
            );
        }
    }

    #[test]
    fn weekday_weekend_use_their_own_delta() {
        let h = history(&[
            (DayKind::Weekday, row(&[8])),
            (DayKind::Weekday, row(&[9])),
            (DayKind::Weekend, row(&[11])),
            (DayKind::Weekend, row(&[12])),
        ]);
        // Pr = 0.5 in each used hour of its kind.
        let pred = predict_active_slots(
            &h,
            PredictionConfig {
                delta_weekday: 0.6,
                delta_weekend: 0.3,
            },
        );
        assert!(!pred.weekday[8], "0.5 < 0.6 on weekdays");
        assert!(pred.weekend[11], "0.5 > 0.3 on weekends");
    }

    #[test]
    fn slots_merge_contiguous_hours() {
        let h = history(&[(DayKind::Weekday, row(&[7, 8, 9, 14, 20, 21]))]);
        let pred = predict_active_slots(&h, PredictionConfig::uniform(0.5));
        let slots = pred.slots_for_day(0); // Monday
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0].len(), 3 * SECS_PER_HOUR);
        assert_eq!(slots[1].len(), SECS_PER_HOUR);
        assert_eq!(slots[2].len(), 2 * SECS_PER_HOUR);
        assert_eq!(pred.active_hour_count(DayKind::Weekday), 6);
    }

    #[test]
    fn is_active_uses_day_kind_of_timestamp() {
        let h = history(&[
            (DayKind::Weekday, row(&[8])),
            (DayKind::Weekend, row(&[14])),
        ]);
        let pred = predict_active_slots(&h, PredictionConfig::uniform(0.5));
        let monday_8am = netmaster_trace::time::at_hour(0, 8);
        let saturday_8am = netmaster_trace::time::at_hour(5, 8);
        let saturday_2pm = netmaster_trace::time::at_hour(5, 14);
        assert!(pred.is_active(monday_8am));
        assert!(!pred.is_active(saturday_8am));
        assert!(pred.is_active(saturday_2pm));
        assert!(pred.prob_at(monday_8am) > 0.9);
    }

    #[test]
    fn network_prediction_counts_screen_off_only() {
        let profile = UserProfile::panel().remove(0);
        let trace = TraceGenerator::new(profile).with_seed(5).generate(7);
        let np = NetworkPrediction::from_trace(&trace);
        assert!(np.daily_count() > 1.0, "expect daily screen-off syncs");
        assert!(np.daily_bytes() > 0.0);
        // Night hours must show background traffic.
        assert!(np.active[3] || np.active[4] || np.active[2]);
        // Counts are per-day averages: can't exceed total/num_days.
        let total_off: usize = trace
            .days
            .iter()
            .map(|d| d.screen_off_activities().count())
            .sum();
        assert!((np.daily_count() - total_off as f64 / 7.0).abs() < 1e-9);
        // Per-app breakdown sums back to the aggregate.
        assert!(np.app_count() >= 2, "several apps sync in the background");
        let app_sum: f64 = np.per_app.iter().map(|a| a.daily_count()).sum();
        assert!(
            (app_sum - np.daily_count()).abs() < 1e-9,
            "per-app partition"
        );
        // Sorted by descending daily count.
        for w in np.per_app.windows(2) {
            assert!(w[0].daily_count() >= w[1].daily_count());
        }
    }

    #[test]
    fn accuracy_on_self_history_is_high_for_regular_user() {
        let profile = UserProfile::panel().remove(3); // regular commuter
        let trace = TraceGenerator::new(profile).with_seed(21).generate(21);
        let train = trace.slice_days(0, 14);
        let test = trace.slice_days(14, 21);
        let h = HourlyHistory::from_trace(&train);
        let pred = predict_active_slots(&h, PredictionConfig::default());
        let acc = prediction_accuracy(&pred, &test);
        assert!(acc > 0.75, "regular user predicted poorly: {acc}");
    }

    #[test]
    fn accuracy_degrades_with_higher_delta() {
        let profile = UserProfile::panel().remove(1);
        let trace = TraceGenerator::new(profile).with_seed(9).generate(21);
        let train = trace.slice_days(0, 14);
        let test = trace.slice_days(14, 21);
        let h = HourlyHistory::from_trace(&train);
        let lo = prediction_accuracy(
            &predict_active_slots(&h, PredictionConfig::uniform(0.05)),
            &test,
        );
        let hi = prediction_accuracy(
            &predict_active_slots(&h, PredictionConfig::uniform(0.9)),
            &test,
        );
        assert!(
            lo >= hi,
            "accuracy should not increase with δ: {lo} vs {hi}"
        );
    }

    #[test]
    fn empty_test_trace_is_vacuously_accurate() {
        let pred = predict_active_slots(&HourlyHistory::default(), PredictionConfig::default());
        assert_eq!(prediction_accuracy(&pred, &Trace::new(1)), 1.0);
    }
}
