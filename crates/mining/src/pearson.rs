//! Pearson correlation of usage vectors (Eq. 1) and the correlation
//! matrices of Figs. 3 and 4.

use crate::intensity::HourlyHistory;
use netmaster_trace::trace::Trace;

/// Pearson correlation coefficient of two equal-length vectors (Eq. 1).
///
/// Returns 0 when either vector has zero variance (a flat usage day
/// carries no pattern to correlate).
///
/// ```
/// use netmaster_mining::pearson;
///
/// let monday  = [0.0, 5.0, 9.0, 2.0];
/// let tuesday = [1.0, 6.0, 8.0, 2.0];
/// assert!(pearson(&monday, &tuesday) > 0.9); // same habit, slight noise
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "Pearson needs equal dimensions");
    let n = x.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Square correlation matrix with labelled mean of off-diagonal cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationMatrix {
    /// `values[i][j]` = correlation of vectors i and j.
    pub values: Vec<Vec<f64>>,
}

impl CorrelationMatrix {
    /// Builds the matrix from a set of vectors.
    pub fn from_vectors(vectors: &[Vec<f64>]) -> Self {
        let n = vectors.len();
        let mut values = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                values[i][j] = if i == j {
                    1.0
                } else {
                    pearson(&vectors[i], &vectors[j])
                };
            }
        }
        CorrelationMatrix { values }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` for an empty matrix.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the off-diagonal entries (the "Avg" the paper quotes:
    /// 0.1353 across users in Fig. 3; 0.8171 across days of user 4 in
    /// Fig. 4).
    pub fn mean_offdiag(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sum += self.values[i][j];
                }
            }
        }
        sum / (n * (n - 1)) as f64
    }

    /// Minimum off-diagonal entry.
    pub fn min_offdiag(&self) -> f64 {
        let mut m = f64::INFINITY;
        for i in 0..self.len() {
            for j in 0..self.len() {
                if i != j {
                    m = m.min(self.values[i][j]);
                }
            }
        }
        m
    }
}

/// Fig. 3: cross-user matrix over mean hourly-intensity vectors.
pub fn cross_user_matrix(traces: &[Trace]) -> CorrelationMatrix {
    let vectors: Vec<Vec<f64>> = traces
        .iter()
        .map(|t| HourlyHistory::from_trace(t).mean_intensity().to_vec())
        .collect();
    CorrelationMatrix::from_vectors(&vectors)
}

/// Fig. 4: day-by-day matrix for one user over the first `days` days
/// (the paper shows an 8×8 for user 4).
pub fn cross_day_matrix(trace: &Trace, days: usize) -> CorrelationMatrix {
    let h = HourlyHistory::from_trace(trace);
    let take = days.min(h.num_days());
    let vectors: Vec<Vec<f64>> = (0..take).map(|d| h.day_vector(d).to_vec()).collect();
    CorrelationMatrix::from_vectors(&vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmaster_trace::gen::generate_panel;

    #[test]
    fn pearson_of_identical_vectors_is_one() {
        let v = vec![1.0, 5.0, 2.0, 8.0];
        assert!((pearson(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_vectors_is_minus_one() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_shift_and_scale_invariant() {
        let x = vec![1.0, 4.0, 2.0, 7.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 10.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_handles_zero_variance() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn pearson_rejects_mismatched_lengths() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn matrix_diagonal_is_one() {
        let m = CorrelationMatrix::from_vectors(&[
            vec![1.0, 2.0, 3.0],
            vec![3.0, 1.0, 2.0],
            vec![2.0, 3.0, 1.0],
        ]);
        for i in 0..3 {
            assert_eq!(m.values[i][i], 1.0);
        }
        assert!(m.mean_offdiag() < 1.0);
        assert!(m.min_offdiag() >= -1.0);
    }

    #[test]
    fn cross_user_correlation_is_low_cross_day_is_high() {
        // The paper's central habit observation: users differ (avg
        // 0.1353), a user's days agree (avg 0.54–0.82).
        let traces = generate_panel(14, 77);
        let users = cross_user_matrix(&traces);
        let cross_user_avg = users.mean_offdiag();
        let per_user_avgs: Vec<f64> = traces
            .iter()
            .map(|t| cross_day_matrix(t, 8).mean_offdiag())
            .collect();
        let intra_avg = per_user_avgs.iter().sum::<f64>() / per_user_avgs.len() as f64;
        assert!(
            cross_user_avg < 0.45,
            "cross-user Pearson too high: {cross_user_avg}"
        );
        assert!(intra_avg > 0.35, "intra-user Pearson too low: {intra_avg}");
        assert!(
            intra_avg > cross_user_avg + 0.2,
            "habit signal missing: intra {intra_avg} vs cross {cross_user_avg}"
        );
    }

    #[test]
    fn regular_user_has_highest_day_correlation() {
        // User 4 (index 3) is the metronomic commuter of Fig. 4. A
        // single 8-day window is noisy, so average over several seeds.
        let seeds = [42u64, 2014, 7, 99];
        let mut avgs = vec![0.0f64; 8];
        for &seed in &seeds {
            let traces = generate_panel(14, seed);
            for (i, t) in traces.iter().enumerate() {
                avgs[i] += cross_day_matrix(t, 8).mean_offdiag() / seeds.len() as f64;
            }
        }
        assert!(
            avgs[3] >= 0.55,
            "user 4 day-to-day Pearson should be high, got {}",
            avgs[3]
        );
        let best = avgs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            best == 3 || avgs[best] - avgs[3] < 0.15,
            "user 4 should be (near) the most regular: {avgs:?}"
        );
    }

    #[test]
    fn cross_day_matrix_clamps_to_available_days() {
        let traces = generate_panel(3, 5);
        let m = cross_day_matrix(&traces[0], 10);
        assert_eq!(m.len(), 3);
    }
}
