//! The paper's headline claims, asserted at reproduction-band level.
//!
//! Exact magnitudes depend on the authors' (unavailable) traces and
//! handsets; these tests pin the *shape* — who wins, by roughly what
//! factor, where crossovers fall. EXPERIMENTS.md records the exact
//! paper-vs-measured numbers.

use netmaster_bench::{figures_eval as ev, figures_profiling as pf};

#[test]
fn claim_screen_off_traffic_is_substantial() {
    // §III: "network activities at the screen-off state accounts for
    // 40.98% of all the activities".
    let f = pf::fig1a();
    assert!(
        (0.25..=0.55).contains(&f.avg_screen_off),
        "screen-off share {:.3} outside band around 0.41",
        f.avg_screen_off
    );
}

#[test]
fn claim_screen_off_rates_sit_below_screen_on() {
    // Fig. 1(b): 90% of screen-off transfers below 1 kB/s, screen-on
    // below 5 kB/s.
    let f = pf::fig1b();
    assert!(f.p90_off < 1_000.0, "p90 screen-off {:.0} B/s", f.p90_off);
    assert!(f.p90_on < 10_000.0, "p90 screen-on {:.0} B/s", f.p90_on);
    assert!(f.p90_on > 2.0 * f.p90_off);
}

#[test]
fn claim_users_differ_but_days_repeat() {
    // Fig. 3 vs Fig. 4: cross-user Pearson low (0.1353), user 4's
    // day-to-day Pearson high (0.8171).
    let f3 = pf::fig3();
    let f4 = pf::fig4();
    assert!(f3.avg < 0.45, "cross-user avg {:.3}", f3.avg);
    assert!(f4.avg > 0.6, "user-4 day avg {:.3}", f4.avg);
    assert!(f4.avg - f3.avg > 0.25, "habit signal too weak");
}

#[test]
fn claim_netmaster_saves_most_of_the_energy() {
    // §VI-A: 77.8% average energy saving; gap to the oracle below 5%
    // typical, 11.2% worst case; 75.39% of radio-on time removed.
    let f = ev::fig7();
    assert!(
        f.netmaster_avg_saving > 0.5,
        "NetMaster saving {:.3} (paper 0.778)",
        f.netmaster_avg_saving
    );
    assert!(
        f.gap_to_oracle < 0.112,
        "gap to oracle {:.3} exceeds the paper's worst case",
        f.gap_to_oracle
    );
    assert!(
        f.netmaster_radio_saving > 0.5,
        "radio-on saving {:.3} (paper 0.7539)",
        f.netmaster_radio_saving
    );
}

#[test]
fn claim_bandwidth_utilization_doubles_or_more() {
    // Abstract: "increases network bandwidth utilization by over 200%"
    // (i.e. >2×); Fig. 7(c): 3.84× down, 2.63× up, peak unchanged.
    let f = ev::fig7();
    assert!(f.down_ratio > 2.0, "down ratio {:.2}", f.down_ratio);
    assert!(f.up_ratio > 2.0, "up ratio {:.2}", f.up_ratio);
    assert!((f.peak_ratio - 1.0).abs() < 0.01, "peak must not improve");
}

#[test]
fn claim_interrupt_chance_below_one_percent() {
    // Abstract/§VI-B: "the chance of undesired interrupt during normal
    // usage is less than 1%".
    let f = ev::fig7();
    assert!(
        f.netmaster_affected < 0.01,
        "affected fraction {:.4}",
        f.netmaster_affected
    );
}

#[test]
fn claim_netmaster_dominates_naive_schemes() {
    // §VI-A/§VI-C: naive delay-and-batch saves far less (22.54% in the
    // paper) and NetMaster beats it decisively.
    let f = ev::fig7();
    assert!(
        f.netmaster_avg_saving > f.delay_batch_avg_saving + 0.3,
        "NetMaster {:.3} vs delay-batch {:.3}",
        f.netmaster_avg_saving,
        f.delay_batch_avg_saving
    );
}

#[test]
fn claim_delay_tradeoff_shape() {
    // Fig. 8: longer delays cut radio time and lift bandwidth, but the
    // affected-interaction ratio climbs with the window — the method
    // cannot win on both axes.
    let f = ev::fig8();
    let first = &f.points[0];
    let last = f.points.last().unwrap();
    assert_eq!(first.delay, 0);
    assert_eq!(last.delay, 600);
    assert!(
        last.radio_saving > 0.05,
        "600 s delay should cut radio time"
    );
    assert!(last.affected > 10.0 * first.affected.max(1e-6) || last.affected > 0.03);
    // Monotone-ish growth of affected interactions along the sweep.
    let mid = f.points.iter().find(|p| p.delay == 60).unwrap();
    assert!(first.affected <= mid.affected && mid.affected <= last.affected);
    // Small delays achieve almost nothing (paper: 5 s "gives little
    // improvement").
    let small = f.points.iter().find(|p| p.delay == 5).unwrap();
    assert!(small.energy_saving < 0.05);
}

#[test]
fn claim_batch_plateaus_past_five() {
    // Fig. 9: "its performance does not improve when the max number
    // exceeds five".
    let f = ev::fig9();
    let at = |n: usize| f.points.iter().find(|p| p.max_batch == n).unwrap();
    let gain_2_5 = at(5).energy_saving - at(2).energy_saving;
    let gain_5_10 = at(10).energy_saving - at(5).energy_saving;
    assert!(gain_2_5 > 0.0);
    assert!(
        gain_5_10 < 0.5 * gain_2_5,
        "no plateau: 2→5 {:.3}, 5→10 {:.3}",
        gain_2_5,
        gain_5_10
    );
    assert!(at(10).affected < 0.15, "batch impact stays bounded");
}

#[test]
fn claim_exponential_sleep_wins() {
    // Fig. 10(b): exponential ≪ random ≤ fixed wake-up counts.
    let f = ev::fig10b();
    let last = f.rows.last().unwrap();
    assert!(last.1 < last.3 && last.3 <= last.2);
}

#[test]
fn claim_threshold_trades_accuracy() {
    // Fig. 10(c): accuracy decreases with δ (energy sensitivity is
    // muted in our screen-state-driven radio control; see
    // EXPERIMENTS.md).
    let f = ev::fig10c();
    let first = f.points.first().unwrap();
    let last = f.points.last().unwrap();
    assert!(first.accuracy >= last.accuracy);
    assert!(
        last.energy_saving > 0.5,
        "NetMaster stays effective at all δ"
    );
}

#[test]
fn claim_slot_prediction_accuracy_band() {
    // §V mines per-hour habits into active slots with high day-to-day
    // accuracy (the paper's Fig. 10(c) reports ~90% at the default δ).
    // We pin that at the hour grain: across a trained panel member's
    // test days the predicted slots must recover most actually-active
    // hours (recall) and mostly point at real activity (precision).
    //
    // This is deliberately a *different* bound from the per-activity
    // hit-rate (~27% on this panel): hit-rate counts every planned
    // screen-off demand, and background syncs fire around the clock —
    // including hours no habit model should (or does) predict — so most
    // "misses" are off-slot background periods, not mispredicted hours.
    // The hour-granular precision/recall below is the metric that
    // actually tests §V's claim; the hit-rate documents scheduling
    // yield. See NetMasterStats for the two metric families.
    use netmaster_core::MiddlewareService;

    let trace = &netmaster_bench::harness::volunteers()[0];
    let train = 14.min(trace.num_days().saturating_sub(1));
    let mut svc = MiddlewareService::new().import_history(&trace.days[..train]);
    let (mut predicted, mut active, mut overlap) = (0u64, 0u64, 0u64);
    let (mut hits, mut misses) = (0u64, 0u64);
    for day in &trace.days[train..] {
        let r = svc.run_day(day);
        predicted += r.slot_hours_predicted;
        active += r.slot_hours_active;
        overlap += r.slot_hours_overlap;
        hits += r.prediction_hits;
        misses += r.prediction_misses;
    }
    assert!(active > 0 && predicted > 0, "test days must have activity");
    let recall = overlap as f64 / active as f64;
    let precision = overlap as f64 / predicted as f64;
    assert!(recall > 0.75, "slot recall {recall:.3} (paper band ~0.9)");
    assert!(precision > 0.6, "slot precision {precision:.3}");
    // And the per-activity hit-rate really is the stricter statistic.
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        hit_rate < recall,
        "hit-rate {hit_rate:.3} should sit below slot recall {recall:.3}"
    );
}
