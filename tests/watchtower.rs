//! Acceptance tests for the fleet health watchtower: a habit shift
//! injected mid-run must raise a `DriftDetected` journal event within
//! days, while unshifted panel users sail through healthy.

#![cfg(feature = "obs")]

use netmaster_core::watchtower::{run_watch, HabitShift, WatchSpec};
use netmaster_obs::health::HealthStatus;
use netmaster_obs::DecisionEvent;
use netmaster_sim::FleetHealth;

const SHIFTED_USER: usize = 2;
const SHIFT_DAY: usize = 14;

fn shifted_spec() -> WatchSpec {
    WatchSpec {
        users: 8,
        days: 21,
        seed: 2014,
        shift: Some(HabitShift {
            user_index: SHIFTED_USER,
            at_day: SHIFT_DAY,
        }),
        ..WatchSpec::default()
    }
}

/// Days on which a `DriftDetected` event fired for the outcome's user.
fn drift_days(outcome: &netmaster_core::watchtower::UserWatchOutcome) -> Vec<usize> {
    outcome
        .journal
        .iter()
        .filter_map(|e| match &e.event {
            DecisionEvent::DriftDetected { day, .. } => Some(*day),
            _ => None,
        })
        .collect()
}

#[test]
fn habit_shift_is_detected_within_three_days() {
    let outcomes = run_watch(&shifted_spec());
    assert_eq!(outcomes.len(), 8);

    // The shifted user alarms within 3 days of the day-14 shift.
    let shifted = &outcomes[SHIFTED_USER];
    let days = drift_days(shifted);
    assert!(
        !days.is_empty(),
        "no DriftDetected for the shifted user: {:?}",
        shifted.scorecard
    );
    let first = *days.iter().min().unwrap();
    assert!(
        (SHIFT_DAY..SHIFT_DAY + 3).contains(&first),
        "first alarm on day {first}, expected within 3 days of day {SHIFT_DAY}"
    );
    assert_eq!(
        shifted.scorecard.first_alarm_day,
        Some(first as u32),
        "scorecard must agree with the journal"
    );
    assert_ne!(
        shifted.scorecard.status,
        HealthStatus::Healthy,
        "a drifted user cannot be reported healthy"
    );
    // The drift response re-mined the user's habit model.
    assert!(shifted.scorecard.remines >= 1);
    // The journal also carries the health transition.
    assert!(shifted.journal.iter().any(|e| matches!(
        &e.event,
        DecisionEvent::HealthDegraded { user, .. } if *user == SHIFTED_USER as u32
    )));

    // Every unshifted panel user stays healthy: no alarms, no events.
    for (i, o) in outcomes.iter().enumerate() {
        if i == SHIFTED_USER {
            continue;
        }
        assert_eq!(
            o.scorecard.status,
            HealthStatus::Healthy,
            "unshifted user {i} flagged: {:?}",
            o.scorecard
        );
        assert_eq!(
            o.scorecard.drift_alarms,
            0,
            "unshifted user {i} alarmed on days {:?}",
            drift_days(o)
        );
    }
}

#[test]
fn fleet_health_report_isolates_the_drifted_user() {
    let outcomes = run_watch(&shifted_spec());
    let cards: Vec<_> = outcomes.iter().map(|o| o.scorecard.clone()).collect();
    let health = FleetHealth::from_scorecards(&cards, 3);
    assert_eq!(health.members(), 8);
    assert_eq!(health.healthy, 7);
    assert_eq!(health.degraded + health.critical, 1);
    // The drifted user tops the worst-K list, with a stated reason.
    assert_eq!(health.worst[0].user, SHIFTED_USER as u32);
    assert!(
        !health.worst[0].reasons.is_empty(),
        "worst user must carry a reason"
    );
}

#[test]
fn quiet_fleet_is_uniformly_healthy() {
    let spec = WatchSpec {
        users: 8,
        days: 21,
        seed: 7,
        shift: None,
        ..WatchSpec::default()
    };
    let outcomes = run_watch(&spec);
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(
            o.scorecard.status,
            HealthStatus::Healthy,
            "user {i} false-alarmed: {:?} drift days {:?}",
            o.scorecard,
            drift_days(o)
        );
    }
    let cards: Vec<_> = outcomes.iter().map(|o| o.scorecard.clone()).collect();
    let health = FleetHealth::from_scorecards(&cards, 5);
    assert_eq!(health.healthy, 8);
    assert_eq!(health.degraded + health.critical, 0);
}

/// When CI runs this suite with `--features strict-invariants`, the
/// watchtower monotonicity oracles inside `observe_day` fire on every
/// simulated day above; this test pins that the checked configuration
/// was actually compiled in (a feature-plumbing regression would
/// silently turn the run into a vacuous one).
#[test]
#[cfg(feature = "strict-invariants")]
#[allow(clippy::assertions_on_constants)]
fn strict_invariants_are_compiled_in() {
    assert!(netmaster::STRICT_INVARIANTS);
    assert!(netmaster_core::STRICT_INVARIANTS);
}
