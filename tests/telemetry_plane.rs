//! Integration test for the live telemetry plane: a real watchtower
//! run streams scorecards into a [`TelemetryHub`] while every scrape
//! endpoint is polled over HTTP; a concurrent request burst and a
//! graceful shutdown close the loop.

#![cfg(feature = "obs")]

use netmaster_core::watchtower::{run_watch_observed, WatchSpec};
use netmaster_obs::{http_get, HealthzReport, ObsServer, ServeOptions, TelemetryHub};
use netmaster_sim::FleetHealth;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// The obs registry is process-global; tests that reset it must not
/// interleave.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn start_server(hub: &Arc<TelemetryHub>) -> ObsServer {
    ObsServer::start(
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            ..ServeOptions::default()
        },
        Arc::clone(hub),
    )
    .expect("bind a scrape server on 127.0.0.1:0")
}

fn get(base: &str, path: &str) -> (u16, String) {
    http_get(&format!("{base}{path}")).unwrap_or_else(|e| panic!("GET {path}: {e}"))
}

const USERS: usize = 6;
const DAYS: usize = 12;

#[test]
fn every_endpoint_serves_while_a_watch_run_streams() {
    let _g = serial();
    netmaster_obs::reset();
    netmaster_obs::set_runtime_enabled(true);

    let hub = Arc::new(TelemetryHub::new());
    let server = start_server(&hub);
    let base = server.base_url();

    hub.begin_run(USERS as u64);
    let worker = {
        let hub = Arc::clone(&hub);
        thread::spawn(move || {
            let spec = WatchSpec {
                users: USERS,
                days: DAYS,
                seed: 77,
                ..WatchSpec::default()
            };
            let cards = Mutex::new(Vec::new());
            let outcomes = run_watch_observed(&spec, &|card| {
                let mut cards = cards.lock().unwrap_or_else(|e| e.into_inner());
                cards.push(card.clone());
                let health = FleetHealth::from_scorecards(&cards, 3);
                hub.publish_fleet_health_json(
                    serde_json::to_string(&health).expect("health to json"),
                );
                hub.member_done();
            });
            let entries: Vec<_> = outcomes
                .into_iter()
                .flat_map(|o| o.journal.into_iter())
                .collect();
            hub.publish_journal_jsonl(
                &netmaster_obs::to_jsonl(&entries).expect("journal to jsonl"),
            );
            hub.end_run();
            entries.len()
        })
    };

    // Scrape live until the run makes progress (and keep validating
    // the exposition on every poll); the hub retains its documents
    // after the run, so a fast run cannot starve the assertions.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mid_run = loop {
        let (status, metrics) = get(&base, "/metrics");
        assert_eq!(status, 200);
        netmaster_obs::validate_prometheus(&metrics)
            .unwrap_or_else(|e| panic!("invalid exposition mid-run: {e}"));
        // The very first scrape can race the first recorded sample;
        // once anything is exposed, HELP/TYPE must come with it.
        if !metrics.trim().is_empty() {
            assert!(metrics.contains("# HELP"), "exposition lost HELP lines");
            assert!(metrics.contains("# TYPE"), "exposition lost TYPE lines");
        }

        let (hz_status, hz_body) = get(&base, "/healthz");
        let report: HealthzReport = serde_json::from_str(&hz_body)
            .unwrap_or_else(|e| panic!("unparseable /healthz {hz_body:?}: {e}"));
        assert_eq!(report.drop_threshold, 0);
        if report.status == "ok" {
            assert_eq!(hz_status, 200);
        } else {
            assert_eq!(hz_status, 503);
        }
        if report.progress.members_done >= 1 {
            break report;
        }
        assert!(Instant::now() < deadline, "run made no progress in 30s");
        thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(mid_run.progress.members_total, USERS as u64);

    let journal_entries = worker.join().expect("watch worker");
    assert!(journal_entries > 0, "watch run produced no journal events");

    // /health/fleet carries the last published roll-up.
    let (status, body) = get(&base, "/health/fleet");
    assert_eq!(status, 200, "no fleet health served: {body}");
    let health: FleetHealth =
        serde_json::from_str(&body).unwrap_or_else(|e| panic!("unparseable fleet health: {e}"));
    assert_eq!(health.members(), USERS);

    // /journal tails the published JSONL, newest lines last.
    let (status, tail) = get(&base, "/journal?n=5");
    assert_eq!(status, 200);
    let lines: Vec<&str> = tail.lines().collect();
    assert!(!lines.is_empty() && lines.len() <= 5, "bad tail: {tail:?}");
    for line in lines {
        serde_json::from_str::<serde_json::Value>(line)
            .unwrap_or_else(|e| panic!("journal line {line:?} is not JSON: {e}"));
    }

    // /ledger is 404 until a bill is published, then serves it.
    let (status, _) = get(&base, "/ledger");
    assert_eq!(status, 404);
    hub.publish_ledger_json("[]".to_owned());
    let (status, body) = get(&base, "/ledger");
    assert_eq!(status, 200);
    assert_eq!(body, "[]");

    // /snapshot round-trips through the obs Snapshot schema.
    let (status, body) = get(&base, "/snapshot");
    assert_eq!(status, 200);
    let snap: netmaster_obs::Snapshot =
        serde_json::from_str(&body).unwrap_or_else(|e| panic!("unparseable snapshot: {e}"));
    assert!(snap.counter(netmaster_obs::names::SERVICE_DAYS_TOTAL) >= (USERS * DAYS) as u64);

    // After end_run the hub gauges are force-published and named with
    // the exporter's prefix.
    let (_, metrics) = get(&base, "/metrics");
    assert!(metrics.contains("# HELP"), "exposition lost HELP lines");
    assert!(metrics.contains("# TYPE"), "exposition lost TYPE lines");
    assert!(
        metrics.contains("netmaster_hub_members_done"),
        "hub gauges missing from exposition"
    );
    assert!(metrics.contains("netmaster_serve_requests_total"));

    // Unknown routes 404 without wedging a worker.
    let (status, _) = get(&base, "/nope");
    assert_eq!(status, 404);

    // Graceful shutdown: the port stops answering.
    server.shutdown();
    assert!(
        http_get(&format!("{base}/healthz")).is_err(),
        "server still answering after shutdown"
    );
}

#[test]
fn concurrent_scrapes_all_succeed_and_shutdown_drains() {
    let _g = serial();
    netmaster_obs::reset();
    netmaster_obs::set_runtime_enabled(true);

    let hub = Arc::new(TelemetryHub::new());
    let server = start_server(&hub);
    let base = server.base_url();

    const SCRAPERS: usize = 8;
    const ROUNDS: usize = 5;
    let mut handles = Vec::new();
    for _ in 0..SCRAPERS {
        let base = base.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..ROUNDS {
                let (status, body) =
                    http_get(&format!("{base}/metrics")).expect("concurrent scrape");
                assert_eq!(status, 200);
                netmaster_obs::validate_prometheus(&body).expect("valid exposition under load");
            }
            ROUNDS
        }));
    }
    let total: usize = handles
        .into_iter()
        .map(|h| h.join().expect("scraper thread"))
        .sum();
    assert_eq!(total, SCRAPERS * ROUNDS);

    // Shutdown drains in-flight requests, so every answered request is
    // visible in the served counter afterwards.
    server.shutdown();
    let served = netmaster_obs::snapshot().counter(netmaster_obs::names::SERVE_REQUESTS_TOTAL);
    assert!(
        served >= (SCRAPERS * ROUNDS) as u64,
        "served only {served} of {} requests",
        SCRAPERS * ROUNDS
    );
    assert!(http_get(&format!("{base}/metrics")).is_err());
}
