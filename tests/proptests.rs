//! Property-based tests over cross-crate invariants.

use netmaster::core::dutycycle::{run_window, SleepScheme};
use netmaster::knapsack::overlapped::{self, OvItem, OvProblem};
use netmaster::knapsack::{branch_and_bound, brute_force, dp_by_capacity, greedy_half, sin_knap, Item};
use netmaster::prelude::*;
use netmaster::radio::attribution::{attribute, AppEnergy};
use netmaster::radio::Interval;
use netmaster::trace::event::AppId;
use netmaster::trace::time::merge_intervals;
use proptest::prelude::*;

fn arb_items(max_n: usize) -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec((1.0f64..100.0, 1u64..50), 1..=max_n)
        .prop_map(|v| v.into_iter().map(|(p, w)| Item::new(p, w)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_matches_brute_force(items in arb_items(10), cap in 1u64..120) {
        let opt = brute_force(&items, cap);
        let dp = dp_by_capacity(&items, cap);
        prop_assert!((opt.profit - dp.profit).abs() < 1e-9);
        prop_assert!(dp.feasible(cap));
    }

    #[test]
    fn fptas_respects_guarantee(items in arb_items(10), cap in 1u64..120, eps in 0.05f64..0.9) {
        let opt = brute_force(&items, cap);
        let sol = sin_knap(&items, cap, eps);
        prop_assert!(sol.feasible(cap));
        prop_assert!(sol.profit >= (1.0 - eps) * opt.profit - 1e-9,
            "eps={} got {} < (1-eps)*{}", eps, sol.profit, opt.profit);
    }

    #[test]
    fn greedy_half_bound(items in arb_items(12), cap in 1u64..120) {
        let opt = brute_force(&items, cap);
        let g = greedy_half(&items, cap);
        prop_assert!(g.feasible(cap));
        prop_assert!(g.profit >= 0.5 * opt.profit - 1e-9);
    }

    #[test]
    fn algorithm1_bound_holds(
        caps in prop::collection::vec(5u64..60, 1..4),
        raw in prop::collection::vec((1u64..25, 0.5f64..20.0, 0.5f64..20.0, 0usize..8, any::<bool>()), 1..9),
    ) {
        let nslots = caps.len();
        let items: Vec<OvItem> = raw.iter().map(|&(w, p1, p2, slot, dual)| {
            let a = slot % nslots;
            if dual && nslots > 1 {
                OvItem::pair(w, (a, p1), ((a + 1) % nslots, p2))
            } else {
                OvItem::single(w, a, p1)
            }
        }).collect();
        let problem = OvProblem { capacities: caps, items };
        let eps = 0.1;
        let approx = overlapped::solve(&problem, eps);
        let opt = overlapped::brute_force(&problem);
        prop_assert!(approx.feasible(&problem));
        prop_assert!(approx.profit >= (1.0 - eps) / 2.0 * opt.profit - 1e-9,
            "{} < (1-eps)/2 * {}", approx.profit, opt.profit);
    }

    #[test]
    fn interval_merge_preserves_coverage(
        spans in prop::collection::vec((0u64..1_000, 1u64..100), 0..20)
    ) {
        let intervals: Vec<Interval> =
            spans.iter().map(|&(s, l)| Interval::new(s, s + l)).collect();
        let merged = merge_intervals(intervals.clone());
        // Disjoint and sorted.
        for w in merged.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
        // Every original point is covered, and no new points appear.
        for iv in &intervals {
            for t in [iv.start, iv.end - 1, iv.midpoint()] {
                prop_assert!(merged.iter().any(|m| m.contains(t)));
            }
        }
        let total: u64 = merged.iter().map(Interval::len).sum();
        let max_total: u64 = intervals.iter().map(Interval::len).sum();
        prop_assert!(total <= max_total);
    }

    #[test]
    fn rrc_account_invariants(
        spans in prop::collection::vec((0u64..50_000, 1u64..120), 1..30)
    ) {
        let intervals: Vec<Interval> =
            spans.iter().map(|&(s, l)| Interval::new(s, s + l)).collect();
        let radio = RrcModel::wcdma_default();
        let b = radio.account(&intervals);
        prop_assert!(b.total_j() > 0.0);
        prop_assert!(b.wakeups >= 1);
        prop_assert!(b.radio_on_secs() >= b.active_secs);
        // Batching the merged bursts back-to-back never costs more
        // (serializing *overlapping* raw spans could add active time,
        // so the invariant is stated over the merged timeline).
        let mut t = 0u64;
        let batched: Vec<Interval> = merge_intervals(intervals.clone())
            .iter()
            .map(|iv| {
                let s = t;
                t += iv.len();
                Interval::new(s, t)
            })
            .collect();
        let bb = radio.account(&batched);
        prop_assert!(bb.total_j() <= b.total_j() + 1e-9);
        // Immediate tail-off is never more expensive than full tails.
        let off = RrcModel::wcdma_immediate_off().account(&intervals);
        prop_assert!(off.total_j() <= b.total_j() + 1e-9);
    }

    #[test]
    fn generator_output_is_always_valid(
        seed in any::<u64>(),
        user in 0usize..8,
        days in 1usize..5,
    ) {
        let profile = UserProfile::panel().remove(user);
        let trace = TraceGenerator::new(profile).with_seed(seed).generate(days);
        prop_assert_eq!(trace.validate(), Ok(()));
        prop_assert_eq!(trace.num_days(), days);
    }

    #[test]
    fn policies_conserve_bytes_on_random_workloads(
        seed in any::<u64>(),
        delay in 1u64..700,
        batch in 2usize..10,
    ) {
        let profile = UserProfile::volunteers().remove((seed % 3) as usize);
        let trace = TraceGenerator::new(profile).with_seed(seed).generate(3);
        let cfg = SimConfig::default();
        let expected: (u64, u64) = trace.total_bytes();
        for policy in [
            Box::new(DelayPolicy::new(delay)) as Box<dyn Policy + Send>,
            Box::new(BatchPolicy::new(batch)),
            Box::new(OraclePolicy),
        ] {
            let mut p = policy;
            let m = simulate(&trace.days, p.as_mut(), &cfg);
            prop_assert_eq!((m.bytes_down, m.bytes_up), expected, "{}", m.policy);
        }
    }

    #[test]
    fn prediction_risk_bounded_by_delta(
        seed in any::<u64>(),
        delta in 0.0f64..0.95,
        user in 0usize..8,
    ) {
        use netmaster::trace::time::DayKind;
        let profile = UserProfile::panel().remove(user);
        let trace = TraceGenerator::new(profile).with_seed(seed).generate(10);
        let h = HourlyHistory::from_trace(&trace);
        let pred = predict_active_slots(&h, PredictionConfig::uniform(delta));
        for kind in [DayKind::Weekday, DayKind::Weekend] {
            prop_assert!(pred.residual_risk(kind) <= delta + 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bnb_matches_brute_force(items in arb_items(12), cap in 1u64..150) {
        let a = brute_force(&items, cap);
        let b = branch_and_bound(&items, cap);
        prop_assert!((a.profit - b.profit).abs() < 1e-9);
        prop_assert!(b.feasible(cap));
    }

    #[test]
    fn timeline_equals_accountant(
        spans in prop::collection::vec((0u64..40_000, 1u64..90), 1..25),
        lte in any::<bool>(),
        immediate in any::<bool>(),
    ) {
        let intervals: Vec<Interval> =
            spans.iter().map(|&(s, l)| Interval::new(s, s + l)).collect();
        let mut model = if lte { RrcModel::lte_default() } else { RrcModel::wcdma_default() };
        if immediate {
            model.tail_policy = TailPolicy::Immediate;
        }
        let b = model.account(&intervals);
        let t = Timeline::build(&model, &intervals);
        prop_assert!((t.total_j() - b.total_j()).abs() < 1e-6,
            "timeline {} vs account {}", t.total_j(), b.total_j());
        prop_assert!((t.radio_on_secs() - b.radio_on_secs()).abs() < 1e-6);
        prop_assert_eq!(t.wakeups(), b.wakeups);
    }

    #[test]
    fn attribution_conserves_energy(
        spans in prop::collection::vec((0u64..40_000, 1u64..90, 0u16..6), 1..25),
    ) {
        let tagged: Vec<(AppId, Interval)> = spans
            .iter()
            .map(|&(s, l, app)| (AppId(app), Interval::new(s, s + l)))
            .collect();
        let model = RrcModel::wcdma_default();
        let intervals: Vec<Interval> = tagged.iter().map(|&(_, s)| s).collect();
        let total = model.account(&intervals).total_j();
        let att = attribute(&model, &tagged);
        let attributed: f64 = att.values().map(AppEnergy::total_j).sum();
        prop_assert!((total - attributed).abs() < 1e-6,
            "account {} vs attributed {}", total, attributed);
        // Per-app components are non-negative.
        for e in att.values() {
            prop_assert!(e.active_j >= -1e-12 && e.promo_j >= -1e-12 && e.tail_j >= -1e-12);
        }
    }

    #[test]
    fn duty_cycle_serves_every_arrival_in_order(
        window_len in 100u64..20_000,
        arrivals in prop::collection::vec(0u64..20_000, 0..30),
        scheme_pick in 0u8..4,
        t_param in 5u64..120,
    ) {
        let window = Interval::new(10_000, 10_000 + window_len);
        let mut arr: Vec<u64> = arrivals
            .into_iter()
            .map(|a| window.start + a % window_len.max(1))
            .collect();
        arr.sort_unstable();
        let scheme = match scheme_pick {
            0 => SleepScheme::Exponential { initial: t_param, reset_on_serve: true },
            1 => SleepScheme::Exponential { initial: t_param, reset_on_serve: false },
            2 => SleepScheme::Fixed { period: t_param },
            _ => SleepScheme::Random { min: t_param, max: t_param * 3, seed: 9 },
        };
        let out = run_window(scheme, window, &arr);
        // Every arrival served exactly once, never before it arrives,
        // and in arrival order.
        prop_assert_eq!(out.served.len(), arr.len());
        let mut seen = vec![false; arr.len()];
        let mut last_idx = 0usize;
        for &(i, at) in &out.served {
            prop_assert!(!seen[i]);
            seen[i] = true;
            prop_assert!(at >= arr[i], "served {} before arrival {}", at, arr[i]);
            prop_assert!(i >= last_idx || last_idx == 0);
            last_idx = i;
        }
        // Wake-ups stay inside the window.
        for &w in &out.wakeups {
            prop_assert!(window.contains(w));
        }
        prop_assert!(out.empty_wakeups <= out.wakeups.len() as u64);
    }

    #[test]
    fn delay_policy_holds_are_bounded(
        seed in any::<u64>(),
        delay in 1u64..700,
    ) {
        let profile = UserProfile::panel().remove((seed % 8) as usize);
        let trace = TraceGenerator::new(profile).with_seed(seed).generate(2);
        let mut p = DelayPolicy::new(delay);
        for day in &trace.days {
            let plan = netmaster::sim::Policy::plan_day(&mut p, day);
            for e in &plan.executions {
                if let Some(orig) = e.moved_from {
                    prop_assert!(e.start >= orig, "never executes early");
                    // Grid release + stagger: bounded by delay plus the
                    // batch's serialized duration (well under 1h here).
                    prop_assert!(e.start - orig <= delay + 3_600,
                        "hold {} exceeds bound", e.start - orig);
                }
            }
        }
    }
}
