//! Property-based tests over cross-crate invariants.
//!
//! Written as seeded random-case loops (the build has no registry access
//! for the `proptest` crate): each test draws its cases from a `StdRng`
//! with a fixed per-test seed, so failures are reproducible — rerun with
//! the printed case seed to shrink by hand.

use netmaster::core::dutycycle::{run_window, SleepScheme};
use netmaster::knapsack::overlapped::{self, OvItem, OvProblem};
use netmaster::knapsack::{
    branch_and_bound, brute_force, dp_by_capacity, greedy_half, sin_knap, Item,
};
use netmaster::prelude::*;
use netmaster::radio::attribution::{attribute, AppEnergy};
use netmaster::radio::Interval;
use netmaster::trace::event::AppId;
use netmaster::trace::time::merge_intervals;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn case_rng(test_seed: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_seed.wrapping_mul(0x9E37_79B9) ^ case)
}

fn random_items(rng: &mut StdRng, max_n: usize) -> Vec<Item> {
    let n = rng.random_range(1..=max_n);
    (0..n)
        .map(|_| Item::new(rng.random_range(1.0f64..100.0), rng.random_range(1u64..50)))
        .collect()
}

fn random_intervals(rng: &mut StdRng, max_start: u64, max_len: u64, count: usize) -> Vec<Interval> {
    (0..count)
        .map(|_| {
            let s = rng.random_range(0..max_start);
            let l = rng.random_range(1..max_len);
            Interval::new(s, s + l)
        })
        .collect()
}

#[test]
fn dp_matches_brute_force() {
    for case in 0..CASES {
        let mut rng = case_rng(101, case);
        let items = random_items(&mut rng, 10);
        let cap = rng.random_range(1u64..120);
        let opt = brute_force(&items, cap);
        let dp = dp_by_capacity(&items, cap);
        assert!((opt.profit - dp.profit).abs() < 1e-9, "case {case}");
        assert!(dp.feasible(cap), "case {case}");
    }
}

#[test]
fn fptas_respects_guarantee() {
    for case in 0..CASES {
        let mut rng = case_rng(102, case);
        let items = random_items(&mut rng, 10);
        let cap = rng.random_range(1u64..120);
        let eps = rng.random_range(0.05f64..0.9);
        let opt = brute_force(&items, cap);
        let sol = sin_knap(&items, cap, eps);
        assert!(sol.feasible(cap), "case {case}");
        assert!(
            sol.profit >= (1.0 - eps) * opt.profit - 1e-9,
            "case {case}: eps={eps} got {} < (1-eps)*{}",
            sol.profit,
            opt.profit
        );
    }
}

#[test]
fn greedy_half_bound() {
    for case in 0..CASES {
        let mut rng = case_rng(103, case);
        let items = random_items(&mut rng, 12);
        let cap = rng.random_range(1u64..120);
        let opt = brute_force(&items, cap);
        let g = greedy_half(&items, cap);
        assert!(g.feasible(cap), "case {case}");
        assert!(g.profit >= 0.5 * opt.profit - 1e-9, "case {case}");
    }
}

#[test]
fn algorithm1_bound_holds() {
    for case in 0..CASES {
        let mut rng = case_rng(104, case);
        let nslots = rng.random_range(1usize..4);
        let caps: Vec<u64> = (0..nslots).map(|_| rng.random_range(5u64..60)).collect();
        let nitems = rng.random_range(1usize..9);
        let items: Vec<OvItem> = (0..nitems)
            .map(|_| {
                let w = rng.random_range(1u64..25);
                let p1 = rng.random_range(0.5f64..20.0);
                let p2 = rng.random_range(0.5f64..20.0);
                let a = rng.random_range(0usize..8) % nslots;
                if rng.random::<bool>() && nslots > 1 {
                    OvItem::pair(w, (a, p1), ((a + 1) % nslots, p2))
                } else {
                    OvItem::single(w, a, p1)
                }
            })
            .collect();
        let problem = OvProblem {
            capacities: caps,
            items,
        };
        let eps = 0.1;
        let approx = overlapped::solve(&problem, eps);
        let opt = overlapped::brute_force(&problem);
        assert!(approx.feasible(&problem), "case {case}");
        assert!(
            approx.profit >= (1.0 - eps) / 2.0 * opt.profit - 1e-9,
            "case {case}: {} < (1-eps)/2 * {}",
            approx.profit,
            opt.profit
        );
    }
}

#[test]
fn interval_merge_preserves_coverage() {
    for case in 0..CASES {
        let mut rng = case_rng(105, case);
        let count = rng.random_range(0usize..20);
        let intervals = random_intervals(&mut rng, 1_000, 100, count);
        let merged = merge_intervals(intervals.clone());
        // Disjoint and sorted.
        for w in merged.windows(2) {
            assert!(w[0].end < w[1].start, "case {case}");
        }
        // Every original point is covered, and no new points appear.
        for iv in &intervals {
            for t in [iv.start, iv.end - 1, iv.midpoint()] {
                assert!(merged.iter().any(|m| m.contains(t)), "case {case}");
            }
        }
        let total: u64 = merged.iter().map(Interval::len).sum();
        let max_total: u64 = intervals.iter().map(Interval::len).sum();
        assert!(total <= max_total, "case {case}");
    }
}

#[test]
fn rrc_account_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(106, case);
        let count = rng.random_range(1usize..30);
        let intervals = random_intervals(&mut rng, 50_000, 120, count);
        let radio = RrcModel::wcdma_default();
        let b = radio.account(&intervals);
        assert!(b.total_j() > 0.0, "case {case}");
        assert!(b.wakeups >= 1, "case {case}");
        assert!(b.radio_on_secs() >= b.active_secs, "case {case}");
        // Batching the merged bursts back-to-back never costs more
        // (serializing *overlapping* raw spans could add active time,
        // so the invariant is stated over the merged timeline).
        let mut t = 0u64;
        let batched: Vec<Interval> = merge_intervals(intervals.clone())
            .iter()
            .map(|iv| {
                let s = t;
                t += iv.len();
                Interval::new(s, t)
            })
            .collect();
        let bb = radio.account(&batched);
        assert!(bb.total_j() <= b.total_j() + 1e-9, "case {case}");
        // Immediate tail-off is never more expensive than full tails.
        let off = RrcModel::wcdma_immediate_off().account(&intervals);
        assert!(off.total_j() <= b.total_j() + 1e-9, "case {case}");
    }
}

#[test]
fn generator_output_is_always_valid() {
    for case in 0..CASES {
        let mut rng = case_rng(107, case);
        let seed: u64 = rng.random();
        let user = rng.random_range(0usize..8);
        let days = rng.random_range(1usize..5);
        let profile = UserProfile::panel().remove(user);
        let trace = TraceGenerator::new(profile).with_seed(seed).generate(days);
        assert_eq!(trace.validate(), Ok(()), "case {case}");
        assert_eq!(trace.num_days(), days, "case {case}");
    }
}

#[test]
fn policies_conserve_bytes_on_random_workloads() {
    // Full simulations are the slowest cases; a smaller count keeps the
    // suite fast while still covering all three policies.
    for case in 0..24 {
        let mut rng = case_rng(108, case);
        let seed: u64 = rng.random();
        let delay = rng.random_range(1u64..700);
        let batch = rng.random_range(2usize..10);
        let profile = UserProfile::volunteers().remove((seed % 3) as usize);
        let trace = TraceGenerator::new(profile).with_seed(seed).generate(3);
        let cfg = SimConfig::default();
        let expected: (u64, u64) = trace.total_bytes();
        for policy in [
            Box::new(DelayPolicy::new(delay)) as Box<dyn Policy + Send>,
            Box::new(BatchPolicy::new(batch)),
            Box::new(OraclePolicy),
        ] {
            let mut p = policy;
            let m = simulate(&trace.days, p.as_mut(), &cfg);
            assert_eq!(
                (m.bytes_down, m.bytes_up),
                expected,
                "case {case}: {}",
                m.policy
            );
        }
    }
}

#[test]
fn prediction_risk_bounded_by_delta() {
    use netmaster::trace::time::DayKind;
    for case in 0..24 {
        let mut rng = case_rng(109, case);
        let seed: u64 = rng.random();
        let delta = rng.random_range(0.0f64..0.95);
        let user = rng.random_range(0usize..8);
        let profile = UserProfile::panel().remove(user);
        let trace = TraceGenerator::new(profile).with_seed(seed).generate(10);
        let h = HourlyHistory::from_trace(&trace);
        let pred = predict_active_slots(&h, PredictionConfig::uniform(delta));
        for kind in [DayKind::Weekday, DayKind::Weekend] {
            assert!(pred.residual_risk(kind) <= delta + 1e-12, "case {case}");
        }
    }
}

#[test]
fn bnb_matches_brute_force() {
    for case in 0..48 {
        let mut rng = case_rng(201, case);
        let items = random_items(&mut rng, 12);
        let cap = rng.random_range(1u64..150);
        let a = brute_force(&items, cap);
        let b = branch_and_bound(&items, cap);
        assert!((a.profit - b.profit).abs() < 1e-9, "case {case}");
        assert!(b.feasible(cap), "case {case}");
    }
}

#[test]
fn timeline_equals_accountant() {
    for case in 0..48 {
        let mut rng = case_rng(202, case);
        let count = rng.random_range(1usize..25);
        let intervals = random_intervals(&mut rng, 40_000, 90, count);
        let lte: bool = rng.random();
        let immediate: bool = rng.random();
        let mut model = if lte {
            RrcModel::lte_default()
        } else {
            RrcModel::wcdma_default()
        };
        if immediate {
            model.tail_policy = TailPolicy::Immediate;
        }
        let b = model.account(&intervals);
        let t = Timeline::build(&model, &intervals);
        assert!(
            (t.total_j() - b.total_j()).abs() < 1e-6,
            "case {case}: timeline {} vs account {}",
            t.total_j(),
            b.total_j()
        );
        assert!(
            (t.radio_on_secs() - b.radio_on_secs()).abs() < 1e-6,
            "case {case}"
        );
        assert_eq!(t.wakeups(), b.wakeups, "case {case}");
    }
}

#[test]
fn attribution_conserves_energy() {
    for case in 0..48 {
        let mut rng = case_rng(203, case);
        let count = rng.random_range(1usize..25);
        let tagged: Vec<(AppId, Interval)> = (0..count)
            .map(|_| {
                let s = rng.random_range(0u64..40_000);
                let l = rng.random_range(1u64..90);
                (AppId(rng.random_range(0u16..6)), Interval::new(s, s + l))
            })
            .collect();
        let model = RrcModel::wcdma_default();
        let intervals: Vec<Interval> = tagged.iter().map(|&(_, s)| s).collect();
        let total = model.account(&intervals).total_j();
        let att = attribute(&model, &tagged);
        let attributed: f64 = att.values().map(AppEnergy::total_j).sum();
        assert!(
            (total - attributed).abs() < 1e-6,
            "case {case}: account {total} vs attributed {attributed}"
        );
        // Per-app components are non-negative.
        for e in att.values() {
            assert!(
                e.active_j >= -1e-12 && e.promo_j >= -1e-12 && e.tail_j >= -1e-12,
                "case {case}"
            );
        }
    }
}

#[test]
fn duty_cycle_serves_every_arrival_in_order() {
    for case in 0..48 {
        let mut rng = case_rng(204, case);
        let window_len = rng.random_range(100u64..20_000);
        let n_arrivals = rng.random_range(0usize..30);
        let scheme_pick = rng.random_range(0u8..4);
        let t_param = rng.random_range(5u64..120);
        let window = Interval::new(10_000, 10_000 + window_len);
        let mut arr: Vec<u64> = (0..n_arrivals)
            .map(|_| window.start + rng.random_range(0u64..20_000) % window_len.max(1))
            .collect();
        arr.sort_unstable();
        let scheme = match scheme_pick {
            0 => SleepScheme::Exponential {
                initial: t_param,
                reset_on_serve: true,
            },
            1 => SleepScheme::Exponential {
                initial: t_param,
                reset_on_serve: false,
            },
            2 => SleepScheme::Fixed { period: t_param },
            _ => SleepScheme::Random {
                min: t_param,
                max: t_param * 3,
                seed: 9,
            },
        };
        let out = run_window(scheme, window, &arr);
        // Every arrival served exactly once, never before it arrives,
        // and in arrival order.
        assert_eq!(out.served.len(), arr.len(), "case {case}");
        let mut seen = vec![false; arr.len()];
        let mut last_idx = 0usize;
        for &(i, at) in &out.served {
            assert!(!seen[i], "case {case}");
            seen[i] = true;
            assert!(
                at >= arr[i],
                "case {case}: served {at} before arrival {}",
                arr[i]
            );
            assert!(i >= last_idx || last_idx == 0, "case {case}");
            last_idx = i;
        }
        // Wake-ups stay inside the window.
        for &w in &out.wakeups {
            assert!(window.contains(w), "case {case}");
        }
        assert!(out.empty_wakeups <= out.wakeups.len() as u64, "case {case}");
    }
}

#[test]
fn delay_policy_holds_are_bounded() {
    for case in 0..48 {
        let mut rng = case_rng(205, case);
        let seed: u64 = rng.random();
        let delay = rng.random_range(1u64..700);
        let profile = UserProfile::panel().remove((seed % 8) as usize);
        let trace = TraceGenerator::new(profile).with_seed(seed).generate(2);
        let mut p = DelayPolicy::new(delay);
        for day in &trace.days {
            let plan = netmaster::sim::Policy::plan_day(&mut p, day);
            for e in &plan.executions {
                if let Some(orig) = e.moved_from {
                    assert!(e.start >= orig, "case {case}: never executes early");
                    // Grid release + stagger: bounded by delay plus the
                    // batch's serialized duration (well under 1h here).
                    assert!(
                        e.start - orig <= delay + 3_600,
                        "case {case}: hold {} exceeds bound",
                        e.start - orig
                    );
                }
            }
        }
    }
}
