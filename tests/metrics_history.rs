//! Integration test for the metrics-history plane: registry snapshots
//! sampled into a [`MetricStore`], persisted to a `history.nmts`
//! segment file, queried back over HTTP, with an [`AlertEngine`] rule
//! driven through its full inactive → pending → firing → resolved
//! cycle and the `/healthz` degradation that firing implies.
//!
//! Deliberately NOT gated on the `obs` feature: the store, alert, and
//! serve modules compile in both configurations (only the recording
//! macros compile out), so the same end-to-end flow must hold under
//! `--no-default-features` too — there it runs on hand-built snapshots
//! instead of live registry traffic.

use netmaster_obs::serve::ServeState;
use netmaster_obs::store::{PointValue, SeriesKind};
use netmaster_obs::{
    http_get, read_history, AlertEngine, AlertRule, AlertsReport, HealthzReport, MetricStore,
    ObsServer, ServeOptions, StoreOptions, TelemetryHub,
};
use netmaster_obs::{BucketSnap, CounterSnap, GaugeSnap, HistSnap, Snapshot};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// The obs registry is process-global; tests that reset it must not
/// interleave.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A synthetic registry snapshot: the fleet's headline gauge plus one
/// counter and one histogram, so every codec kind rides along.
fn snap(saving: f64, requests: u64, observations: u64) -> Snapshot {
    Snapshot {
        counters: vec![CounterSnap {
            name: "demo_requests_total".to_owned(),
            value: requests,
        }],
        gauges: vec![GaugeSnap {
            name: "fleet_saving_ratio".to_owned(),
            value: saving,
        }],
        histograms: vec![HistSnap {
            name: "demo_latency_seconds".to_owned(),
            count: observations,
            sum_secs: observations as f64 * 0.25,
            buckets: vec![BucketSnap {
                le_secs: 0.5,
                count: observations,
            }],
        }],
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netmaster-history-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn get(base: &str, path: &str) -> (u16, String) {
    http_get(&format!("{base}{path}")).unwrap_or_else(|e| panic!("GET {path}: {e}"))
}

#[test]
fn sample_persist_query_fire_and_resolve_round_trip() {
    let _g = serial();
    netmaster_obs::reset();
    netmaster_obs::set_runtime_enabled(true);

    let store = Arc::new(MetricStore::new(StoreOptions::default()));
    let rules = AlertRule::parse_list("saving_floor:fleet_saving_ratio<0.5:for=2:sev=page")
        .expect("rule parses");
    let engine = Arc::new(AlertEngine::new(rules));

    // Healthy regime: the gauge sits above the floor, the counter and
    // histogram advance monotonically.
    for i in 0..4u64 {
        let t = 1_000 + i * 1_000;
        store.sample_at(t, &snap(0.8, 10 * (i + 1), 4 * (i + 1)));
        engine.evaluate(&store, t);
    }
    assert_eq!(engine.firing(), 0);
    assert!(!engine.page_firing());

    // Serve the plane and query it back.
    let hub = Arc::new(TelemetryHub::new());
    let server = ObsServer::start_with(
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            ..ServeOptions::default()
        },
        Arc::clone(&hub),
        ServeState {
            store: Some(Arc::clone(&store)),
            alerts: Some(Arc::clone(&engine)),
            profile: None,
        },
    )
    .expect("bind history server on 127.0.0.1:0");
    let base = server.base_url();

    let (status, body) = get(&base, "/series");
    assert_eq!(status, 200);
    let series: Vec<netmaster_obs::serve::SeriesInfo> =
        serde_json::from_str(&body).unwrap_or_else(|e| panic!("unparseable /series {body:?}: {e}"));
    assert_eq!(series.len(), 3, "{series:?}");
    assert!(series
        .iter()
        .any(|s| s.metric == "fleet_saving_ratio" && s.kind == "gauge" && s.points == 4));

    let (status, body) = get(&base, "/query?metric=fleet_saving_ratio&fn=range");
    assert_eq!(status, 200);
    let range: netmaster_obs::serve::QueryRange =
        serde_json::from_str(&body).unwrap_or_else(|e| panic!("unparseable /query {body:?}: {e}"));
    assert_eq!(range.points.len(), 4);
    assert!(range.points.iter().all(|&(_, v)| v == 0.8));

    let (status, body) = get(&base, "/query?metric=demo_requests_total&fn=increase");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"value\": 30") || body.contains("\"value\":30"),
        "{body}"
    );

    // Two consecutive breaches walk the rule inactive → pending →
    // firing; the page severity degrades /healthz to 503.
    store.sample_at(5_000, &snap(0.1, 50, 20));
    engine.evaluate(&store, 5_000);
    let pending: AlertsReport =
        serde_json::from_str(&get(&base, "/alerts").1).expect("alerts report");
    assert_eq!(pending.firing, 0);
    assert_eq!(pending.alerts[0].state, "pending");

    store.sample_at(6_000, &snap(0.1, 60, 24));
    engine.evaluate(&store, 6_000);
    let (status, body) = get(&base, "/alerts");
    assert_eq!(status, 200);
    let firing: AlertsReport = serde_json::from_str(&body).expect("alerts report");
    assert_eq!(firing.firing, 1);
    assert!(firing.page_firing);
    assert_eq!(firing.alerts[0].state, "firing");
    assert_eq!(firing.alerts[0].since_ms, Some(6_000));

    let (status, body) = get(&base, "/healthz");
    assert_eq!(
        status, 503,
        "page-severity firing must degrade /healthz: {body}"
    );
    let hz: HealthzReport = serde_json::from_str(&body).expect("healthz report");
    assert_eq!(hz.alerts_firing, 1);
    assert_eq!(hz.status, "degraded");

    // Recovery resolves the alert and restores /healthz.
    store.sample_at(7_000, &snap(0.9, 70, 28));
    engine.evaluate(&store, 7_000);
    let resolved: AlertsReport =
        serde_json::from_str(&get(&base, "/alerts").1).expect("alerts report");
    assert_eq!(resolved.firing, 0);
    assert!(!resolved.page_firing);
    assert_eq!(resolved.alerts[0].state, "inactive");
    let (status, _) = get(&base, "/healthz");
    assert_eq!(status, 200);

    // The transition journal carries one firing and one resolved event
    // — unless observability is compiled out, where journal emission
    // no-ops while the alert state machine above still runs.
    let jsonl = engine.drain_journal_jsonl();
    if netmaster_obs::compiled() {
        assert!(
            jsonl.contains(netmaster_obs::names::KIND_ALERT_FIRING),
            "{jsonl}"
        );
        assert!(
            jsonl.contains(netmaster_obs::names::KIND_ALERT_RESOLVED),
            "{jsonl}"
        );
    } else {
        assert!(
            jsonl.is_empty(),
            "no-obs build must not emit journal events: {jsonl}"
        );
    }

    // Persist and read back bit-for-bit: every series, every point.
    let path = tmp_path("round_trip.nmts");
    let _ = std::fs::remove_file(&path);
    let flushed = store.flush_to(&path).expect("flush history");
    assert!(flushed > 0);
    let segments = read_history(&path).expect("read history back");
    for (metric, kind, points) in store.series_list() {
        let decoded: Vec<_> = segments
            .iter()
            .filter(|s| s.metric == metric)
            .flat_map(|s| s.points.iter().cloned())
            .collect();
        assert_eq!(decoded.len(), points, "{metric}");
        assert_eq!(
            decoded,
            store.points(&metric, 0, u64::MAX),
            "{metric} ({kind:?}) must round-trip bit-for-bit"
        );
    }

    // Incremental flush: new samples append without rewriting history.
    let before = std::fs::metadata(&path).expect("history metadata").len();
    store.sample_at(8_000, &snap(0.9, 80, 32));
    store.flush_to(&path).expect("incremental flush");
    let after = std::fs::metadata(&path).expect("history metadata").len();
    assert!(after > before, "incremental flush must append");
    let gauge_points: usize = read_history(&path)
        .expect("re-read history")
        .iter()
        .filter(|s| s.metric == "fleet_saving_ratio")
        .map(|s| s.points.len())
        .sum();
    assert_eq!(gauge_points, 8);

    let _ = std::fs::remove_file(&path);
    server.shutdown();
    assert!(http_get(&format!("{base}/healthz")).is_err());
}

/// Counters that reset (process restart) must still decode, and
/// `increase` must count only forward progress.
#[test]
fn counter_resets_survive_persistence_and_queries() {
    let _g = serial();
    netmaster_obs::reset();

    let store = MetricStore::new(StoreOptions::default());
    let readings = [100u64, 150, 20, 70, 10];
    for (i, &v) in readings.iter().enumerate() {
        store.sample_at(1_000 * (i as u64 + 1), &snap(0.8, v, 1));
    }

    // increase() is reset-aware: a drop restarts the count from zero,
    // so the post-reset reading itself is progress. Forward motion is
    // +50, then the reset to 20 (+20), +50, then the reset to 10 (+10).
    assert_eq!(
        store.increase("demo_requests_total", 0, u64::MAX),
        Some(130.0)
    );

    let path = tmp_path("resets.nmts");
    let _ = std::fs::remove_file(&path);
    store.flush_to(&path).expect("flush resets");
    let segments = read_history(&path).expect("read resets back");
    let decoded: Vec<u64> = segments
        .iter()
        .filter(|s| s.metric == "demo_requests_total")
        .flat_map(|s| s.points.iter())
        .map(|p| match &p.value {
            PointValue::Counter(v) => *v,
            other => panic!("expected counter point, got {other:?}"),
        })
        .collect();
    assert_eq!(decoded, readings);
    assert!(segments
        .iter()
        .filter(|s| s.metric == "demo_requests_total")
        .all(|s| s.kind == SeriesKind::Counter));
    let _ = std::fs::remove_file(&path);
}

/// With the `obs` feature on, the background [`Sampler`] drives the
/// same loop from the *live* registry: a watch-style workload publishes
/// the gauge, the sampler records + evaluates + persists on its own
/// thread, and alert transitions land in the hub's journal tail.
#[cfg(feature = "obs")]
#[test]
fn background_sampler_records_live_registry_and_fires() {
    use std::time::{Duration, Instant};

    let _g = serial();
    netmaster_obs::reset();
    netmaster_obs::set_runtime_enabled(true);

    let store = Arc::new(MetricStore::new(StoreOptions::default()));
    let rules =
        AlertRule::parse_list("saving_floor:fleet_saving_ratio<0.5:sev=page").expect("rule parses");
    let engine = Arc::new(AlertEngine::new(rules));
    let hub = Arc::new(TelemetryHub::new());
    let path = tmp_path("live.nmts");
    let _ = std::fs::remove_file(&path);

    netmaster_obs::gauge_set(netmaster_obs::names::FLEET_SAVING_RATIO, 0.1);
    let sampler = netmaster_obs::Sampler::start(
        Arc::clone(&store),
        Some(Arc::clone(&engine)),
        Some(Arc::clone(&hub)),
        Duration::from_millis(20),
        Some(path.clone()),
    );

    // The rule has no for= gate, so the first breaching sample fires.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.firing() == 0 {
        assert!(Instant::now() < deadline, "sampler never fired the alert");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(engine.page_firing());

    // Recovery resolves on a later tick.
    netmaster_obs::gauge_set(netmaster_obs::names::FLEET_SAVING_RATIO, 0.9);
    while engine.firing() > 0 {
        assert!(
            Instant::now() < deadline,
            "sampler never resolved the alert"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    sampler.stop();

    assert!(store.samples_total() >= 2);
    assert!(store.last_value("fleet_saving_ratio").is_some());

    // The sampler persisted on its own; the file decodes and holds the
    // recovered gauge value last.
    let segments = read_history(&path).expect("sampler-persisted history");
    let last_gauge = segments
        .iter()
        .filter(|s| s.metric == "fleet_saving_ratio")
        .flat_map(|s| s.points.iter())
        .last()
        .expect("gauge series persisted");
    assert_eq!(last_gauge.value, PointValue::Gauge(0.9));

    // Both transitions were published into the hub's journal tail.
    let tail = hub.journal_tail(100);
    assert!(
        tail.contains(netmaster_obs::names::KIND_ALERT_FIRING),
        "{tail:?}"
    );
    assert!(
        tail.contains(netmaster_obs::names::KIND_ALERT_RESOLVED),
        "{tail:?}"
    );
    let _ = std::fs::remove_file(&path);
}
