//! Cross-crate integration tests: the full generate → mine → schedule →
//! simulate pipeline, exercised end to end.

use netmaster::prelude::*;

fn trained(trace: &Trace) -> NetMasterPolicy {
    NetMasterPolicy::new(
        NetMasterConfig::default(),
        LinkModel::default(),
        RrcModel::wcdma_default(),
    )
    .with_training(&trace.days[..14])
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let trace = TraceGenerator::new(UserProfile::volunteers().remove(1))
            .with_seed(77)
            .generate(21);
        let mut nm = trained(&trace);
        simulate(&trace.days[14..], &mut nm, &SimConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the identical run");
}

#[test]
fn every_policy_conserves_bytes_and_transfer_count() {
    let trace = generate_volunteers(21, 5)[0].clone();
    let test = &trace.days[14..];
    let cfg = SimConfig::default();
    let expected_bytes = test.iter().fold((0u64, 0u64), |(d, u), day| {
        day.activities
            .iter()
            .fold((d, u), |(d, u), a| (d + a.bytes_down, u + a.bytes_up))
    });
    let expected_count: u64 = test.iter().map(|d| d.activities.len() as u64).sum();

    let mut policies: Vec<Box<dyn Policy + Send>> = vec![
        Box::new(DefaultPolicy),
        Box::new(OraclePolicy),
        Box::new(trained(&trace)),
        Box::new(DelayPolicy::new(60)),
        Box::new(DelayPolicy::new(600)),
        Box::new(BatchPolicy::new(5)),
    ];
    for m in compare(test, &mut policies, &cfg) {
        assert_eq!(
            (m.bytes_down, m.bytes_up),
            expected_bytes,
            "{} lost or invented bytes",
            m.policy
        );
        assert_eq!(
            m.executed_transfers, expected_count,
            "{} dropped transfers",
            m.policy
        );
    }
}

#[test]
fn policy_ordering_matches_the_paper() {
    // Oracle ≤ NetMaster < delay/batch < default, for every volunteer.
    let cfg = SimConfig::default();
    for trace in generate_volunteers(21, 2014) {
        let test = &trace.days[14..];
        let base = simulate(test, &mut DefaultPolicy, &cfg);
        let oracle = simulate(test, &mut OraclePolicy, &cfg);
        let mut nm = trained(&trace);
        let master = simulate(test, &mut nm, &cfg);
        let delay = simulate(test, &mut DelayPolicy::new(60), &cfg);
        let batch = simulate(test, &mut BatchPolicy::new(5), &cfg);
        assert!(
            oracle.energy_j <= master.energy_j * 1.001,
            "volunteer {}: oracle {} vs netmaster {}",
            trace.user_id,
            oracle.energy_j,
            master.energy_j
        );
        assert!(
            master.energy_j < delay.energy_j,
            "volunteer {}",
            trace.user_id
        );
        assert!(
            master.energy_j < batch.energy_j,
            "volunteer {}",
            trace.user_id
        );
        assert!(
            delay.energy_j <= base.energy_j * 1.01,
            "volunteer {}",
            trace.user_id
        );
        assert!(
            batch.energy_j < base.energy_j,
            "volunteer {}",
            trace.user_id
        );
    }
}

#[test]
fn netmaster_learns_online_without_pretraining() {
    // Start untrained and run three weeks straight: the first days fall
    // back to duty cycling, later days schedule, and the whole run still
    // beats the stock device.
    let trace = generate_volunteers(21, 9)[2].clone();
    let cfg = SimConfig::default();
    let mut nm = NetMasterPolicy::new(
        NetMasterConfig::default(),
        LinkModel::default(),
        RrcModel::wcdma_default(),
    );
    let master = simulate(&trace.days, &mut nm, &cfg);
    let base = simulate(&trace.days, &mut DefaultPolicy, &cfg);
    assert!(nm.trained(), "three weeks must train the miner");
    let stats = nm.stats();
    assert!(stats.untrained_days >= 1);
    assert!(stats.trained_days > stats.untrained_days);
    assert!(
        master.energy_saving_vs(&base) > 0.3,
        "online learning should still save: {:.3}",
        master.energy_saving_vs(&base)
    );
}

#[test]
fn user_experience_holds_across_the_panel() {
    // The <1% interrupt claim, checked on all 8 panel users, not just
    // the volunteers.
    let cfg = SimConfig::default();
    for trace in generate_panel(21, 2014) {
        let mut nm = trained(&trace);
        let m = simulate(&trace.days[14..], &mut nm, &cfg);
        assert!(
            m.affected_fraction() < 0.01,
            "user {}: {:.4} interrupts",
            trace.user_id,
            m.affected_fraction()
        );
    }
}

#[test]
fn lte_radio_works_throughout_the_pipeline() {
    // The whole stack is radio-technology agnostic: swap LTE in.
    let trace = generate_volunteers(21, 3)[0].clone();
    let cfg = SimConfig {
        radio: RrcConfig::lte(),
        ..SimConfig::default()
    };
    let mut nm = NetMasterPolicy::new(
        NetMasterConfig::default(),
        LinkModel::default(),
        RrcModel::lte_default(),
    )
    .with_training(&trace.days[..14]);
    let base = simulate(&trace.days[14..], &mut DefaultPolicy, &cfg);
    let master = simulate(&trace.days[14..], &mut nm, &cfg);
    assert!(master.energy_j < base.energy_j);
    assert!(master.affected_fraction() < 0.01);
}

#[test]
fn trace_serialization_survives_the_simulator() {
    // Round-trip a trace through JSON and verify the simulation result
    // is bit-identical.
    let trace = generate_volunteers(16, 11)[1].clone();
    let json = netmaster::trace::io::to_json(&trace).expect("trace encodes");
    let back = netmaster::trace::io::from_json(&json).unwrap();
    assert_eq!(trace, back);
    let cfg = SimConfig::default();
    let a = simulate(&trace.days[14..], &mut DefaultPolicy, &cfg);
    let b = simulate(&back.days[14..], &mut DefaultPolicy, &cfg);
    assert_eq!(a, b);
}
