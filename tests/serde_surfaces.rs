//! API-stability tests: every serializable surface round-trips through
//! JSON, so saved traces, exported metrics, and figure dumps stay
//! loadable across versions.

use netmaster::core::decision::DayRouting;
use netmaster::prelude::*;
use netmaster::sim::{run_fleet, FleetReport};
use netmaster::trace::stats::{Histogram, Summary};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn run_metrics_round_trip() {
    let trace = generate_volunteers(5, 3).remove(0);
    let m = simulate(&trace.days, &mut DefaultPolicy, &SimConfig::default());
    let back: RunMetrics = round_trip(&m);
    assert_eq!(m, back);
    // Key fields present under stable names in the JSON.
    let v: serde_json::Value = serde_json::to_value(&m).unwrap();
    for key in [
        "policy",
        "energy_j",
        "radio_on_secs",
        "affected_interactions",
        "rrc",
    ] {
        assert!(v.get(key).is_some(), "missing key {key}");
    }
}

#[test]
fn netmaster_config_round_trip_includes_extensions() {
    let cfg = NetMasterConfig {
        drift_reset: true,
        prediction_bound: netmaster::mining::Bound::Upper,
        ..NetMasterConfig::aggressive()
    };
    let back: NetMasterConfig = round_trip(&cfg);
    assert_eq!(cfg, back);
}

#[test]
fn day_routing_round_trip() {
    use netmaster::core::DecisionMaker;
    use netmaster::mining::{predict_active_slots, NetworkPrediction};
    let trace = generate_volunteers(14, 8).remove(1);
    let history = HourlyHistory::from_trace(&trace);
    let active = predict_active_slots(&history, PredictionConfig::default());
    let network = NetworkPrediction::from_trace(&trace);
    let maker = DecisionMaker::new(
        NetMasterConfig::default(),
        LinkModel::default(),
        RrcModel::wcdma_default(),
    );
    let routing = maker.plan_day(14, &active, &network);
    let back: DayRouting = round_trip(&routing);
    assert_eq!(routing, back);
    assert!(!back.slots.is_empty());
}

#[test]
fn fleet_report_round_trip() {
    let traces: Vec<(u64, Trace)> = vec![
        (1, generate_volunteers(4, 1).remove(0)),
        (2, generate_volunteers(4, 2).remove(1)),
    ];
    let report = run_fleet(&traces, 3, &SimConfig::default(), |_| {
        Box::new(DefaultPolicy)
    });
    let back: FleetReport = round_trip(&report);
    assert_eq!(report, back);
}

#[test]
fn stats_types_round_trip() {
    let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
    assert_eq!(s, round_trip(&s));
    let h = Histogram::from_values(0.0, 10.0, 4, &[1.0, 2.0, 9.0]);
    assert_eq!(h, round_trip(&h));
}

#[test]
fn radio_models_round_trip() {
    use netmaster::radio::{SizeAwareRrc, Timeline};
    let m = RrcModel::wcdma_default();
    assert_eq!(m, round_trip(&m));
    let s = SizeAwareRrc::wcdma();
    assert_eq!(s, round_trip(&s));
    let t = Timeline::build(&m, &[netmaster::radio::Interval::new(0, 5)]);
    assert_eq!(t, round_trip(&t));
    let b = BatteryModel::htc_one_x();
    assert_eq!(b, round_trip(&b));
}

#[test]
fn mining_outputs_round_trip() {
    use netmaster::mining::{habit_stability, NetworkPrediction, StabilityReport};
    let trace = generate_volunteers(10, 4).remove(2);
    let history = HourlyHistory::from_trace(&trace);
    let pred = netmaster::mining::predict_active_slots(&history, PredictionConfig::default());
    assert_eq!(pred, round_trip(&pred));
    let net = NetworkPrediction::from_trace(&trace);
    assert_eq!(net, round_trip(&net));
    let stab: StabilityReport = habit_stability(&history);
    assert_eq!(stab, round_trip(&stab));
}

#[test]
fn figure_json_dumps_parse_back() {
    // The figures binary dumps these; make sure the shapes parse as
    // generic JSON and carry the expected top-level keys.
    use netmaster_bench::{figures_eval as ev, figures_profiling as pf};
    let f1a = serde_json::to_value(pf::fig1a()).unwrap();
    assert!(f1a["rows"].is_array());
    assert!(f1a["avg_screen_off"].is_number());
    let f10b = serde_json::to_value(ev::fig10b()).unwrap();
    assert!(f10b["rows"].is_array());
}
