//! Robustness integration tests: the middleware under edge-case
//! workloads the miner's assumptions break on.

use netmaster::prelude::*;
use netmaster::trace::scenario;

fn netmaster_for(trace: &Trace, train_days: usize) -> NetMasterPolicy {
    NetMasterPolicy::new(
        NetMasterConfig::default(),
        LinkModel::default(),
        RrcModel::wcdma_default(),
    )
    .with_training(&trace.days[..train_days])
}

fn check_sane(trace: &Trace, train_days: usize) -> (RunMetrics, RunMetrics) {
    let cfg = SimConfig::default();
    let test = &trace.days[train_days..];
    let base = simulate(test, &mut DefaultPolicy, &cfg);
    let mut nm = netmaster_for(trace, train_days);
    let master = simulate(test, &mut nm, &cfg);
    assert_eq!(
        (master.bytes_down, master.bytes_up),
        (base.bytes_down, base.bytes_up),
        "bytes conserved"
    );
    assert!(master.energy_j >= 0.0 && master.energy_j.is_finite());
    assert!(
        master.affected_fraction() < 0.02,
        "{:.4}",
        master.affected_fraction()
    );
    (base, master)
}

#[test]
fn vacation_week_in_training_does_not_break_prediction() {
    // A week of drawer days inside the training window dilutes the
    // usage probabilities; the policy must still schedule and save.
    let trace = scenario::vacation(2014);
    let (base, master) = check_sane(&trace, 14);
    assert!(
        master.energy_saving_vs(&base) > 0.25,
        "saving {:.3}",
        master.energy_saving_vs(&base)
    );
}

#[test]
fn empty_test_days_cost_nothing() {
    // Drawer days in the *test* window: nothing to do, nothing spent
    // beyond a handful of duty wake-ups.
    let trace = scenario::drawer_days(
        netmaster::trace::gen::generate_volunteers(18, 7).remove(0),
        16,
        18,
    );
    let cfg = SimConfig::default();
    let mut nm = netmaster_for(&trace, 14);
    let m = simulate(&trace.days[16..], &mut nm, &cfg);
    assert_eq!(m.bytes_down, 0);
    assert_eq!(m.executed_transfers, 0);
    // Only duty-cycle listens may spend energy; an idle day costs a few
    // dozen joules at most.
    assert!(m.energy_j < 100.0, "idle days cost {} J", m.energy_j);
    assert_eq!(m.affected_interactions, 0);
}

#[test]
fn airplane_mode_days_are_harmless() {
    let trace = scenario::airplane_weekend(11);
    let cfg = SimConfig::default();
    let mut nm = netmaster_for(&trace, 14);
    let m = simulate(&trace.days[14..], &mut nm, &cfg);
    assert_eq!(
        m.executed_transfers, 0,
        "no network demands in airplane mode"
    );
    assert_eq!(
        m.affected_interactions, 0,
        "offline interactions need no radio"
    );
    assert!(m.interactions > 0, "the user still used the phone");
}

#[test]
fn binge_day_streams_without_interference() {
    let trace = scenario::binge(21);
    let cfg = SimConfig::default();
    let test = &trace.days[14..];
    let base = simulate(test, &mut DefaultPolicy, &cfg);
    let mut nm = netmaster_for(&trace, 14);
    let m = simulate(test, &mut nm, &cfg);
    assert_eq!(m.bytes_down, base.bytes_down, "streams untouched");
    // Foreground streaming is screen-on: NetMaster must not move it.
    assert!(
        m.affected_fraction() < 0.01,
        "binge interrupted: {:.4}",
        m.affected_fraction()
    );
    // Long back-to-back transfers leave little tail waste, so savings
    // shrink — but NetMaster must never cost MORE than stock.
    assert!(m.energy_j <= base.energy_j * 1.001);
}

#[test]
fn schedule_change_is_survivable_and_ewma_adapts_faster() {
    use netmaster::mining::{predict_with, EwmaModel, FrequencyModel};
    let trace = scenario::schedule_change(21, 10, 5);
    // Train across the drift boundary: 14 days = 10 old + 4 new habit.
    let (_base, master) = check_sane(&trace, 14);
    assert!(master.energy_j.is_finite());

    // The EWMA predictor tracks the new nocturnal habit better than the
    // paper's equal-weight frequency model.
    let train = trace.slice_days(0, 14);
    let test = trace.slice_days(14, 21);
    let h = HourlyHistory::from_trace(&train);
    let cfg = PredictionConfig::default();
    let freq_acc = prediction_accuracy(&predict_with(&FrequencyModel, &h, cfg), &test);
    let ewma_acc = prediction_accuracy(&predict_with(&EwmaModel { alpha: 0.4 }, &h, cfg), &test);
    assert!(
        ewma_acc >= freq_acc,
        "EWMA should adapt at least as fast: {ewma_acc:.3} vs {freq_acc:.3}"
    );
}

#[test]
fn drift_reset_relearns_a_new_schedule() {
    use netmaster::mining::{predict_active_slots, HourlyHistory};
    use netmaster::trace::time::DayKind;
    // Office worker switches to night shifts on day 10.
    let trace = netmaster::trace::scenario::schedule_change(21, 10, 77);
    let cfg = SimConfig::default();

    let run = |drift_reset: bool| {
        let nm_cfg = NetMasterConfig {
            drift_reset,
            ..Default::default()
        };
        let mut nm = NetMasterPolicy::new(nm_cfg, LinkModel::default(), RrcModel::wcdma_default());
        // Run the whole three weeks online.
        let m = simulate(&trace.days, &mut nm, &cfg);
        (m, nm.stats())
    };
    let (plain_m, plain_stats) = run(false);
    let (adaptive_m, adaptive_stats) = run(true);
    assert_eq!(plain_stats.drift_resets, 0);
    assert!(
        adaptive_stats.drift_resets >= 1,
        "the day-10 schedule change must trigger a reset: {adaptive_stats:?}"
    );
    // Both conserve the workload and keep the interrupt guarantee.
    assert_eq!(adaptive_m.bytes_down, plain_m.bytes_down);
    assert!(adaptive_m.affected_fraction() < 0.01);

    // After the reset, predictions come from post-drift history only:
    // rebuild what the adaptive miner would see at day 20 and check the
    // nocturnal hours are predicted active.
    let post = trace.slice_days(15, 21);
    let pred = predict_active_slots(
        &HourlyHistory::from_trace(&post),
        PredictionConfig::default(),
    );
    assert!(
        pred.hours(DayKind::Weekday)[1] || pred.hours(DayKind::Weekday)[2],
        "night-shift hours must be active in post-drift history"
    );
}

#[test]
fn forgotten_phone_day_gets_batched_hard() {
    // A sessionless day of pure background noise: everything funnels
    // through duty-cycle wake-ups; batching should beat stock clearly.
    let trace = scenario::forgotten_phone_day(
        netmaster::trace::gen::generate_volunteers(16, 13).remove(0),
        15,
    );
    let cfg = SimConfig::default();
    let day = &trace.days[15..16];
    let base = simulate(day, &mut DefaultPolicy, &cfg);
    let mut nm = netmaster_for(&trace, 14);
    let m = simulate(day, &mut nm, &cfg);
    assert_eq!(m.bytes_down, base.bytes_down);
    assert!(
        m.energy_saving_vs(&base) > 0.5,
        "sessionless background day should batch well: {:.3}",
        m.energy_saving_vs(&base)
    );
}

#[test]
fn single_day_traces_do_not_panic_any_policy() {
    let trace = netmaster::trace::gen::generate_volunteers(1, 99).remove(2);
    let cfg = SimConfig::default();
    let mut policies: Vec<Box<dyn Policy + Send>> = vec![
        Box::new(DefaultPolicy),
        Box::new(OraclePolicy),
        Box::new(DelayPolicy::new(600)),
        Box::new(BatchPolicy::new(8)),
        Box::new(NetMasterPolicy::new(
            NetMasterConfig::default(),
            LinkModel::default(),
            RrcModel::wcdma_default(),
        )),
    ];
    for m in compare(&trace.days, &mut policies, &cfg) {
        assert!(m.energy_j.is_finite(), "{}", m.policy);
    }
}
