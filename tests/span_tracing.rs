//! Golden span-tree test: one fixed-seed day through the
//! [`MiddlewareService`] must produce an exact hierarchical trace —
//! stage names, nesting, and attributes are part of the product's
//! contract (the `explain` jump and the flamegraph export both key on
//! them), so a drive-by span rename or a lost parent/child edge fails
//! here, not in a dashboard.
//!
//! Deliberately NOT gated on the `obs` feature: under
//! `--no-default-features` the same workload runs and the store must
//! stay empty.

use netmaster_core::MiddlewareService;
use netmaster_obs::{SpanNode, TraceStore};
use netmaster_trace::gen::TraceGenerator;
use netmaster_trace::profile::UserProfile;

const TRAIN_DAYS: usize = 14;
const SEED: u64 = 2014;

/// Preorder flatten to `depth:name` strings — the golden shape.
fn flatten(node: &SpanNode, depth: usize, out: &mut Vec<String>) {
    out.push(format!("{depth}:{}", node.name));
    for child in &node.children {
        flatten(child, depth + 1, out);
    }
}

/// Preorder span ids — creation order must match entry order.
fn ids(node: &SpanNode, out: &mut Vec<u64>) {
    out.push(node.id);
    for child in &node.children {
        ids(child, out);
    }
}

/// Timing sanity for every node: self time within total, children
/// within the parent.
fn check_clocks(node: &SpanNode) {
    assert!(
        node.self_secs >= 0.0 && node.self_secs <= node.total_secs + 1e-9,
        "{}: self {} vs total {}",
        node.name,
        node.self_secs,
        node.total_secs
    );
    let child_sum: f64 = node.children.iter().map(|c| c.total_secs).sum();
    assert!(
        child_sum <= node.total_secs + 1e-6,
        "{}: children sum {} exceeds total {}",
        node.name,
        child_sum,
        node.total_secs
    );
    for child in &node.children {
        check_clocks(child);
    }
}

#[test]
fn one_trained_day_produces_the_golden_span_tree() {
    netmaster_obs::reset();
    netmaster_obs::set_runtime_enabled(true);
    netmaster_obs::set_trace_capture(true);
    TraceStore::global().clear();

    let profile = UserProfile::panel().remove((SEED % 8) as usize);
    let trace = TraceGenerator::new(profile)
        .with_seed(SEED)
        .generate(TRAIN_DAYS + 2);
    let mut svc = MiddlewareService::new().import_history(&trace.days[..TRAIN_DAYS]);
    let report = svc.run_day(&trace.days[TRAIN_DAYS]);
    assert_eq!(report.day, TRAIN_DAYS);

    if !netmaster_obs::compiled() {
        assert!(
            TraceStore::global().is_empty(),
            "no-obs builds must capture no span trees"
        );
        return;
    }

    let tree = TraceStore::global()
        .exemplar("run_day")
        .expect("the run_day root span must be captured");

    // The golden shape: the middleware day plans — predicting slots,
    // solving the overlapped knapsack, duty-cycling the screen-off
    // windows — and finally mines the observed day into history, all
    // within the planner's extent.
    let mut shape = Vec::new();
    flatten(&tree, 0, &mut shape);
    assert_eq!(
        shape,
        [
            "0:run_day",
            "1:plan_day",
            "2:predict",
            "2:solve",
            "2:dutycycle",
            "2:mine",
        ],
        "span tree shape changed — update the golden shape if intentional"
    );

    // Typed attributes: the day on the root and the planner, the
    // solver-arm mix on the solve span.
    assert_eq!(tree.attr("day"), Some(TRAIN_DAYS.to_string().as_str()));
    let plan = &tree.children[0];
    assert_eq!(plan.attr("day"), Some(TRAIN_DAYS.to_string().as_str()));
    let solve = tree.find_name("solve").expect("solve span present");
    let arm = solve.attr("arm").expect("solve span carries its arm");
    assert!(
        ["fastpath", "bnb", "dp", "mixed"].contains(&arm),
        "unexpected solver arm {arm:?}"
    );

    // Ids are assigned at entry, so preorder ids strictly increase.
    let mut id_order = Vec::new();
    ids(&tree, &mut id_order);
    assert!(
        id_order.windows(2).all(|w| w[0] < w[1]),
        "span ids must increase in entry order: {id_order:?}"
    );
    check_clocks(&tree);
    assert_eq!(tree.node_count(), shape.len());

    // The metric→tree jump used by `explain`: the day attribute finds
    // this exact tree.
    let jumped = TraceStore::global()
        .find_by_attr("day", &TRAIN_DAYS.to_string())
        .expect("find_by_attr must resolve the day");
    assert_eq!(jumped.id, tree.id);

    // The rendered tree and the serde surface both carry the shape.
    let rendered = tree.render();
    assert!(rendered.starts_with("run_day "));
    assert!(rendered.contains("[day=14]"));
    assert!(rendered.contains("arm="));
    let json = serde_json::to_string(&tree).expect("span tree serializes");
    let back: SpanNode = serde_json::from_str(&json).expect("span tree round-trips");
    let mut back_shape = Vec::new();
    flatten(&back, 0, &mut back_shape);
    assert_eq!(back_shape, shape);
}
