//! Deterministic concurrency stress test for the telemetry plane: N
//! scraper threads hammer every HTTP endpoint while M producer threads
//! drive the hub's hot path and a background [`Sampler`] feeds the
//! [`MetricStore`] + [`AlertEngine`], all against one [`ObsServer`] on
//! port 0. The point is the interleaving, not the numbers: shutdown
//! ordering is exact (producers join → run ends → scrapers drain →
//! sampler stops → server drains), and every post-drain assertion is
//! on state that joins have already made single-threaded.
//!
//! Deliberately NOT gated on the `obs` feature: under
//! `--no-default-features` the same thread topology runs — the server
//! still serves, the sampler thread still spins and stops — but
//! recording folds away, which the tail assertions pin down.

use netmaster_obs::serve::ServeState;
use netmaster_obs::{
    http_get, AlertEngine, AlertRule, MetricStore, ObsServer, Sampler, ServeOptions, StoreOptions,
    TelemetryHub,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// The obs registry is process-global; tests that reset it must not
/// interleave.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

const PRODUCERS: usize = 3;
const SCRAPERS: usize = 4;
const ITEMS: usize = 400;
const PATHS: [&str; 5] = [
    "/metrics",
    "/healthz",
    "/series",
    "/alerts",
    "/query?metric=stress_level&fn=range",
];

#[test]
fn scrape_burst_with_producers_and_sampler_drains_exactly() {
    let _g = serial();
    netmaster_obs::reset();
    netmaster_obs::set_runtime_enabled(true);

    let hub = Arc::new(TelemetryHub::new());
    let store = Arc::new(MetricStore::new(StoreOptions {
        retention_points: 4096,
    }));
    let rules = AlertRule::parse_list("stress_floor:stress_level<0.5:for=2:sev=page")
        .expect("rule spec parses");
    let engine = Arc::new(AlertEngine::new(rules));
    let server = ObsServer::start_with(
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            threads: 3,
            drop_threshold: 0,
        },
        Arc::clone(&hub),
        ServeState {
            store: Some(Arc::clone(&store)),
            alerts: Some(Arc::clone(&engine)),
            profile: None,
        },
    )
    .expect("bind a scrape server on 127.0.0.1:0");
    let base = server.base_url();
    let sampler = Sampler::start(
        Arc::clone(&store),
        Some(Arc::clone(&engine)),
        Some(Arc::clone(&hub)),
        Duration::from_millis(2),
        None,
    );

    hub.begin_run((PRODUCERS * ITEMS) as u64);

    // Producers: the hub's hot path (Relaxed RMW + throttled try_lock
    // publish into the registry gauges).
    let mut producers = Vec::new();
    for _ in 0..PRODUCERS {
        let hub = Arc::clone(&hub);
        producers.push(thread::spawn(move || {
            for i in 0..ITEMS {
                hub.member_done();
                if i % 8 == 0 {
                    hub.day_done();
                }
            }
        }));
    }

    // Scrapers: rotate through every endpoint until the producers are
    // done, then one more full rotation so each path is also exercised
    // against the post-run state.
    let done = Arc::new(AtomicBool::new(false));
    let mut scrapers = Vec::new();
    for s in 0..SCRAPERS {
        let base = base.clone();
        let done = Arc::clone(&done);
        scrapers.push(thread::spawn(move || {
            let mut served = 0usize;
            let mut i = s; // stagger so scrapers start on different paths
            let mut tail = None;
            loop {
                let path = PATHS[i % PATHS.len()];
                i += 1;
                let (status, _body) = http_get(&format!("{base}{path}"))
                    .unwrap_or_else(|e| panic!("GET {path}: {e}"));
                assert!(
                    matches!(status, 200 | 404 | 503),
                    "GET {path} answered {status}"
                );
                served += 1;
                if done.load(Ordering::Acquire) {
                    let t = *tail.get_or_insert(served + PATHS.len());
                    if served >= t {
                        break;
                    }
                }
            }
            served
        }));
    }

    for p in producers {
        p.join().expect("producer thread");
    }
    hub.end_run();
    done.store(true, Ordering::Release);
    let mut scraped = 0usize;
    for s in scrapers {
        scraped += s.join().expect("scraper thread");
    }
    assert!(
        scraped >= SCRAPERS * PATHS.len(),
        "each scraper must complete at least one full rotation, served {scraped}"
    );

    // Exact drain accounting: every producer joined before these
    // reads, so the counts are closed-form, not approximate.
    let progress = hub.progress();
    assert!(!progress.run_active, "end_run must clear run_active");
    assert_eq!(progress.members_done, (PRODUCERS * ITEMS) as u64);
    assert_eq!(progress.members_total, (PRODUCERS * ITEMS) as u64);
    assert_eq!(progress.days_done, (PRODUCERS * ITEMS.div_ceil(8)) as u64);

    // The stress rule watches a series nothing records, so the
    // concurrent evaluate passes must all have left it inactive.
    assert_eq!(engine.firing(), 0, "{:?}", engine.report());

    // Sampler shutdown: stop() joins the thread and takes one final
    // sample, after which the store goes quiet for good.
    sampler.stop();
    let samples = store.samples_total();
    if netmaster_obs::compiled() {
        assert!(samples >= 1, "the final stop() tick must always sample");
    } else {
        // Compiled-out builds keep the thread topology but fold
        // recording away entirely.
        assert_eq!(samples, 0, "no-obs builds must not record samples");
    }
    thread::sleep(Duration::from_millis(20));
    assert_eq!(
        store.samples_total(),
        samples,
        "samples after stop() mean the sampler thread outlived its join"
    );

    // Server shutdown drains the queue and joins accept + workers; a
    // fresh connection must now be refused.
    server.shutdown();
    assert!(
        http_get(&format!("{base}/healthz")).is_err(),
        "the listener must be closed after shutdown"
    );
}

/// Sampling-profiler accounting under real thread concurrency: N
/// worker threads each hold the same two-deep span stack open behind a
/// barrier while the main thread drives a [`ProfileAgg`] by hand. With
/// the workers parked, every tick must see exactly N live stacks, so
/// the totals are closed-form — no sleeps, no tolerance bands.
#[test]
fn profiler_ticks_account_for_every_live_stack_exactly() {
    use netmaster_obs::ProfileAgg;
    use std::sync::Barrier;

    const PROF_THREADS: usize = 4;
    const PROF_TICKS: u64 = 5;

    let _g = serial();
    netmaster_obs::reset();
    netmaster_obs::set_runtime_enabled(true);

    let agg = Arc::new(ProfileAgg::new());
    let open = Arc::new(Barrier::new(PROF_THREADS + 1));
    let done = Arc::new(Barrier::new(PROF_THREADS + 1));
    let workers: Vec<_> = (0..PROF_THREADS)
        .map(|_| {
            let open = Arc::clone(&open);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let _outer = netmaster_obs::span!("stress_prof_outer");
                let _inner = netmaster_obs::span!("stress_prof_inner");
                open.wait();
                done.wait();
            })
        })
        .collect();

    open.wait();
    for _ in 0..PROF_TICKS {
        agg.tick();
    }
    done.wait();
    for w in workers {
        w.join().expect("profiled worker joins");
    }

    let report = agg.report();
    if netmaster_obs::compiled() {
        let expected = PROF_THREADS as u64 * PROF_TICKS;
        assert_eq!(report.samples_total, expected);
        // Every worker holds the identical stack, so the folded
        // aggregate collapses to one row accounting for all samples.
        assert_eq!(report.stacks.len(), 1, "{:?}", report.stacks);
        assert_eq!(
            report.stacks[0].stack,
            "stress_prof_outer;stress_prof_inner"
        );
        assert_eq!(report.stacks[0].count, expected);
    } else {
        assert_eq!(report.samples_total, 0);
        assert!(report.stacks.is_empty());
    }
}
